//! Welford's online algorithm for streaming mean and variance.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming estimator of count, mean, variance, min, max.
///
/// Welford's update avoids the catastrophic cancellation of the naive
/// sum-of-squares method, which matters when accumulating millions of
/// near-equal latency samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0.0 when empty (callers check [`Welford::count`] when the
    /// distinction matters).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator); 0.0 with fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// combination), as if all its observations had been pushed here.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn empty_accumulator() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn matches_closed_form() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert_close(w.mean(), 5.0, 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert_close(w.variance(), 32.0 / 7.0, 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
        assert_close(w.sum(), 40.0, 1e-12);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
        assert_eq!(w.min(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert_close(a.mean(), seq.mean(), 1e-9);
        assert_close(a.variance(), seq.variance(), 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);

        let mut e = Welford::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn stable_under_large_offsets() {
        // Naive sum-of-squares would lose all precision here.
        let mut w = Welford::new();
        let offset = 1e12;
        for x in [offset + 1.0, offset + 2.0, offset + 3.0] {
            w.push(x);
        }
        assert_close(w.variance(), 1.0, 1e-3);
    }
}
