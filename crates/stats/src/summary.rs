//! Serializable digests of a metric stream, used by the experiment harness
//! to move results between simulation workers and report formatters.

use serde::{Deserialize, Serialize};

use crate::ci::ConfidenceInterval;
use crate::welford::Welford;

/// A compact, serializable summary of one scalar metric.
///
/// Non-finite fields (`NaN` for "not available", infinite CI half-widths
/// for under-sampled runs) serialize as JSON `null` and deserialize back to
/// `NaN`, so reports round-trip through `serde_json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    #[serde(with = "nullable_f64")]
    pub std_dev: f64,
    /// Smallest observation (`NaN` when empty).
    #[serde(with = "nullable_f64")]
    pub min: f64,
    /// Largest observation (`NaN` when empty).
    #[serde(with = "nullable_f64")]
    pub max: f64,
    /// Half-width of the 95 % CI when one was computed (batch means or
    /// replications); `NaN` when not available.
    #[serde(with = "nullable_f64")]
    pub ci95_half_width: f64,
}

/// Serializes non-finite floats as `null` (JSON has no NaN/∞) and restores
/// them as `NaN`. Public so downstream report types can reuse it with
/// `#[serde(with = "dup_stats::nullable_f64")]`.
pub mod nullable_f64 {
    use serde::{Deserialize, Deserializer, Serializer};

    /// Serializes a float, mapping non-finite values to `null`.
    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    /// Deserializes a float, mapping `null` back to `NaN`.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::NAN))
    }
}

impl Summary {
    /// Summarizes a [`Welford`] accumulator, treating its raw observations as
    /// independent for the CI (appropriate for replication means, not for raw
    /// within-run samples).
    pub fn from_welford(w: &Welford) -> Summary {
        let ci = ConfidenceInterval::from_welford_95(w);
        Summary {
            count: w.count(),
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: w.min().unwrap_or(f64::NAN),
            max: w.max().unwrap_or(f64::NAN),
            ci95_half_width: ci.half_width,
        }
    }

    /// Summarizes a point estimate with an externally computed interval.
    pub fn with_ci(mean: f64, ci: ConfidenceInterval, count: u64) -> Summary {
        Summary {
            count,
            mean,
            std_dev: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            ci95_half_width: ci.half_width,
        }
    }

    /// The interval as a [`ConfidenceInterval`].
    pub fn ci95(&self) -> ConfidenceInterval {
        ConfidenceInterval {
            mean: self.mean,
            half_width: self.ci95_half_width,
            count: self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_welford_roundtrip() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            w.push(x);
        }
        let s = Summary::from_welford(&w);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.ci95_half_width.is_finite());
        assert_eq!(s.ci95().mean, 2.0);
    }

    #[test]
    fn empty_summary_has_nans() {
        let s = Summary::from_welford(&Welford::new());
        assert_eq!(s.count, 0);
        assert!(s.min.is_nan());
        assert!(s.max.is_nan());
        assert!(s.ci95_half_width.is_infinite());
    }

    #[test]
    fn serde_roundtrip() {
        let mut w = Welford::new();
        w.push(5.0);
        w.push(7.0);
        let s = Summary::from_welford(&w);
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(s.count, back.count);
        assert_eq!(s.mean, back.mean);
    }
}

#[cfg(test)]
mod nullable_tests {
    use super::*;

    #[test]
    fn non_finite_fields_roundtrip_as_null() {
        let s = Summary {
            count: 0,
            mean: 0.0,
            std_dev: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            ci95_half_width: f64::INFINITY,
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("null"));
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert!(back.std_dev.is_nan());
        assert!(back.ci95_half_width.is_nan());
    }
}
