//! Statistics substrate for the `dup-p2p` simulator.
//!
//! The paper reports *average query latency with 95 % confidence intervals*
//! and keeps each simulation "running until at least the 95 % confidence
//! interval of the query latency is obtained". This crate provides the
//! machinery for that:
//!
//! * [`Welford`] — numerically stable streaming mean/variance.
//! * [`ConfidenceInterval`] / [`student_t_975`] — Student-t intervals.
//! * [`BatchMeans`] — steady-state output analysis that turns one long,
//!   autocorrelated sample stream into approximately independent batch means.
//! * [`Histogram`] — fixed-width histogram with percentile queries.
//! * [`Summary`] — a compact serializable digest used by the harness.
//! * [`SpaceSaving`] — bounded-memory heavy-hitter sketch for hot-node sets.
//! * [`WindowedSeries`] — bounded `(time, value)` ring for profiling traces.
//!
//! # Example
//!
//! ```
//! use dup_stats::{BatchMeans, ConfidenceInterval, Welford};
//!
//! // Streaming moments over raw observations:
//! let mut w = Welford::new();
//! for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
//!     w.push(x);
//! }
//! assert_eq!(w.mean(), 5.0);
//!
//! // A 95% Student-t interval:
//! let ci = ConfidenceInterval::from_welford_95(&w);
//! assert!(ci.contains(5.0));
//!
//! // Batch means for autocorrelated simulation output:
//! let mut bm = BatchMeans::new(100);
//! for i in 0..1000 {
//!     bm.push((i % 7) as f64);
//! }
//! assert_eq!(bm.completed_batches(), 10);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod ci;
pub mod histogram;
pub mod spacesaving;
pub mod summary;
pub mod welford;
pub mod window;

pub use batch::BatchMeans;
pub use ci::{student_t_975, ConfidenceInterval};
pub use histogram::Histogram;
pub use spacesaving::{SketchEntry, SpaceSaving};
pub use summary::{nullable_f64, Summary};
pub use welford::Welford;
pub use window::{Sample, WindowedSeries};
