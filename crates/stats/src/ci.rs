//! Student-t confidence intervals.

use serde::{Deserialize, Serialize};

use crate::welford::Welford;

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval; the interval is `mean ± half_width`.
    pub half_width: f64,
    /// Number of samples behind the estimate.
    pub count: u64,
}

impl ConfidenceInterval {
    /// 95 % confidence interval for the mean of the observations in `w`,
    /// using the Student-t quantile for `count − 1` degrees of freedom.
    /// With fewer than two samples the half-width is infinite (the interval
    /// is uninformative), mirroring how output analysis treats an
    /// under-sampled run.
    pub fn from_welford_95(w: &Welford) -> ConfidenceInterval {
        let count = w.count();
        let half_width = if count < 2 {
            f64::INFINITY
        } else {
            student_t_975(count - 1) * w.std_error()
        };
        ConfidenceInterval {
            mean: w.mean(),
            half_width,
            count,
        }
    }

    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Half-width relative to the mean; `INFINITY` when the mean is zero and
    /// the half-width is not. Used as the "CI obtained" stopping criterion.
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// True when the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }
}

/// Two-sided 95 % Student-t critical value (the 0.975 quantile) for `df`
/// degrees of freedom.
///
/// Exact tabulated values for small `df` (where the t distribution differs
/// most from the normal), then a standard monotone interpolation in `1/df`
/// toward the normal quantile 1.959964. Accuracy is better than 2e-3
/// everywhere, far below the statistical noise of any simulation run.
pub fn student_t_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060, 2.2622, 2.2281, 2.2010,
        2.1788, 2.1604, 2.1448, 2.1314, 2.1199, 2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739,
        2.0687, 2.0639, 2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423,
    ];
    const Z_975: f64 = 1.959_963_985;
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        _ => {
            // Interpolate linearly in 1/df between df=30 and df=∞; the t
            // quantile is close to linear in 1/df in this regime.
            let t30 = TABLE[29];
            let w = 30.0 / df as f64;
            Z_975 + (t30 - Z_975) * w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_spot_checks() {
        assert!((student_t_975(1) - 12.7062).abs() < 1e-4);
        assert!((student_t_975(10) - 2.2281).abs() < 1e-4);
        assert!((student_t_975(30) - 2.0423).abs() < 1e-4);
        // df=60 exact value is 2.0003; interpolation should be within 2e-3.
        assert!((student_t_975(60) - 2.0003).abs() < 2e-3);
        // df=120 exact value is 1.9799.
        assert!((student_t_975(120) - 1.9799).abs() < 2e-3);
        // Large df converges to the normal quantile.
        assert!((student_t_975(1_000_000) - 1.959964).abs() < 1e-3);
    }

    #[test]
    fn t_is_monotone_decreasing() {
        let mut prev = student_t_975(1);
        for df in 2..500 {
            let t = student_t_975(df);
            assert!(t <= prev + 1e-12, "t({df})={t} > t({})={prev}", df - 1);
            prev = t;
        }
        assert!(prev > 1.959);
    }

    #[test]
    fn zero_df_is_infinite() {
        assert!(student_t_975(0).is_infinite());
    }

    #[test]
    fn interval_from_known_sample() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        let ci = ConfidenceInterval::from_welford_95(&w);
        assert_eq!(ci.mean, 3.0);
        // s = sqrt(2.5), se = s/sqrt(5), t(4) = 2.7764
        let expected = 2.7764 * (2.5f64).sqrt() / 5.0f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-4);
        assert!(ci.contains(3.0));
        assert!(!ci.contains(0.0));
        assert!((ci.low() + ci.high()) / 2.0 - 3.0 < 1e-12);
    }

    #[test]
    fn undersampled_interval_is_infinite() {
        let mut w = Welford::new();
        w.push(1.0);
        let ci = ConfidenceInterval::from_welford_95(&w);
        assert!(ci.half_width.is_infinite());
        assert!(ci.relative_half_width().is_infinite());
    }

    #[test]
    fn relative_half_width_edge_cases() {
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            count: 10,
        };
        assert_eq!(ci.relative_half_width(), 0.0);
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            count: 10,
        };
        assert!(ci.relative_half_width().is_infinite());
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 0.5,
            count: 10,
        };
        assert_eq!(ci.relative_half_width(), 0.05);
    }

    #[test]
    fn coverage_sanity_monte_carlo() {
        // The 95% interval built from n=20 standard-uniform samples should
        // cover the true mean 0.5 roughly 95% of the time. A deterministic
        // LCG keeps this test stable.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let trials = 2000;
        let mut covered = 0;
        for _ in 0..trials {
            let mut w = Welford::new();
            for _ in 0..20 {
                w.push(next());
            }
            if ConfidenceInterval::from_welford_95(&w).contains(0.5) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((0.92..=0.98).contains(&rate), "coverage {rate}");
    }
}
