//! Queue-backend microbenchmark over the simulator's observed timer
//! profile: a standing population of ~50 events, mostly near-future
//! deliveries (~hop latency out) plus arrival ticks and sparse TTL-scale
//! maintenance timers. Prints ns per push+pop pair for the heap backend
//! and the timer wheel across a sweep of tick widths.
//!
//! Run with: `cargo run --release -p dup-sim --example queue_bench`

use dup_sim::{EventQueue, QueueBackend, SimDuration, SimTime};

/// xorshift64* — deterministic, no dependency on the seeded stream RNG.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One simulated event gap, in nanoseconds, drawn from the production mix:
/// 70 % deliveries ~ Exp(hop=0.1 s), 20 % arrival ticks ~ Exp(1 s),
/// 8 % lease-scale timers ~ U[75, 225] s, 2 % TTL-scale ~ U[1800, 5400] s.
fn gap(rng: &mut Rng) -> u64 {
    let r = rng.next() % 100;
    let exp = |rng: &mut Rng, mean: f64| (-mean * (1.0 - rng.f64()).ln() * 1e9) as u64;
    match r {
        0..=69 => exp(rng, 0.1),
        70..=89 => exp(rng, 1.0),
        90..=97 => 75_000_000_000 + rng.next() % 150_000_000_000,
        _ => 1_800_000_000_000 + rng.next() % 3_600_000_000_000,
    }
}

fn run(mut q: EventQueue<u64>, ops: u64, depth: usize) -> (f64, u64) {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut now = 0u64;
    for i in 0..depth as u64 {
        let g = gap(&mut rng);
        q.push(SimTime::from_nanos(now + g), i);
    }
    let started = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..ops {
        let (t, v) = q.pop().expect("standing population never drains");
        now = t.as_nanos();
        acc ^= v;
        let g = gap(&mut rng);
        q.push(SimTime::from_nanos(now + g), i);
    }
    let elapsed = started.elapsed().as_nanos() as f64;
    (elapsed / ops as f64, acc)
}

fn main() {
    const OPS: u64 = 4_000_000;
    const DEPTH: usize = 50;
    // Warm-up + measure twice, report the better pass.
    let bench = |backend: QueueBackend| {
        let mut best = f64::MAX;
        let mut check = 0;
        for _ in 0..3 {
            let (ns, acc) = run(EventQueue::with_backend(backend), OPS, DEPTH);
            best = best.min(ns);
            check = acc;
        }
        (best, check)
    };
    let (heap_ns, heap_acc) = bench(QueueBackend::DEFAULT_HEAP);
    println!("heap                 {heap_ns:6.1} ns/op");
    for shift in [20u32, 23, 26, 28, 30, 31, 32, 33, 34, 35, 36, 38] {
        let tick = SimDuration::from_nanos(1 << shift);
        let (ns, acc) = bench(QueueBackend::TimerWheel { tick });
        assert_eq!(acc, heap_acc, "backend divergence at tick 2^{shift}");
        println!(
            "wheel tick=2^{shift} ({:>8.3}s) {ns:6.1} ns/op ({:+5.1}%)",
            tick.as_secs_f64(),
            (ns / heap_ns - 1.0) * 100.0
        );
    }
}
