//! The event loop: pops events in `(time, seq)` order and hands them to a
//! handler that may schedule further events.

use crate::profiler::{EngineProfiler, DEPTH_SAMPLE_EVERY, TIME_SAMPLE_EVERY};
use crate::queue::{EventQueue, Popped, QueueBackend, TimerId};
use crate::time::{SimDuration, SimTime};
use std::time::Instant;

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained completely.
    Drained,
    /// The horizon was reached; events at or beyond it remain queued.
    HorizonReached,
    /// The handler requested a stop via [`Engine::stop`].
    Stopped,
    /// The event budget ([`Engine::set_event_limit`]) was exhausted.
    EventLimit,
}

/// A deterministic discrete-event engine.
///
/// The engine owns the clock and the future-event list. Model state lives in
/// the caller's closure environment (or in a struct the closure borrows), so
/// the engine stays generic and reusable across the overlay, protocol, and
/// harness layers.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: Option<SimTime>,
    event_limit: Option<u64>,
    events_processed: u64,
    stop_requested: bool,
    profiler: Option<Box<EngineProfiler>>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at zero and no horizon.
    pub fn new() -> Self {
        Engine::with_queue(EventQueue::new())
    }

    /// Creates an engine over a caller-configured pending-event queue
    /// (backend selection and pre-sizing; see [`QueueBackend`]).
    pub fn with_queue(queue: EventQueue<E>) -> Self {
        Engine {
            queue,
            now: SimTime::ZERO,
            horizon: None,
            event_limit: None,
            events_processed: 0,
            stop_requested: false,
            profiler: None,
        }
    }

    /// Creates an engine whose queue uses `backend`.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Engine::with_queue(EventQueue::with_backend(backend))
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Largest number of simultaneously pending events seen so far — the
    /// queue-depth high-water mark reported by the bench pipeline.
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// The timestamp of the earliest pending event, if any. A live host
    /// uses this to budget its event-loop sleep: nothing in the timer
    /// queue can become due before this instant.
    pub fn peek_next_at(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Stops the run once the event whose handler is executing returns.
    /// Remaining events stay queued.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }

    /// Sets the simulation horizon: events strictly before `horizon` execute,
    /// later ones stay queued and the run returns
    /// [`RunOutcome::HorizonReached`].
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = Some(horizon);
    }

    /// Caps the total number of events executed across all `run` calls —
    /// a backstop against runaway feedback loops in model code.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = Some(limit);
    }

    /// Enables self-profiling: subsequent [`Engine::run`] calls time queue
    /// pops and handler dispatch and sample queue depth. Profiling is
    /// wall-clock only — it never affects event order or model state.
    pub fn enable_profiler(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::new(EngineProfiler::new()));
        }
    }

    /// The accumulated profile, if profiling is enabled.
    pub fn profiler(&self) -> Option<&EngineProfiler> {
        self.profiler.as_deref()
    }

    /// Detaches and returns the accumulated profile, disabling profiling.
    pub fn take_profiler(&mut self) -> Option<EngineProfiler> {
        self.profiler.take().map(|p| *p)
    }

    /// Schedules `event` at the absolute instant `at`. The returned handle
    /// can cancel the event via [`Engine::cancel`]; callers that never
    /// cancel may ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant: scheduling into the past
    /// is always a model bug and silently reordering it would corrupt
    /// causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerId {
        assert!(
            at >= self.now,
            "scheduled event at {at} in the past (now {now})",
            now = self.now
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> TimerId {
        let at = self.now + delay;
        self.queue.push(at, event)
    }

    /// Cancels a scheduled event by handle. Returns true when the event was
    /// marked for removal (see [`EventQueue::cancel`] for the lazy-deletion
    /// contract). Cancel only events that have not fired yet.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.queue.cancel(id)
    }

    /// Runs until drained, horizon, stop request, or event budget; the
    /// handler receives `&mut Engine` so it can schedule follow-up events and
    /// read the clock.
    pub fn run<F>(&mut self, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.stop_requested = false;
        loop {
            if self.stop_requested {
                return RunOutcome::Stopped;
            }
            if let Some(limit) = self.event_limit {
                if self.events_processed >= limit {
                    return RunOutcome::EventLimit;
                }
            }
            // One queue scan per iteration: the pop and the horizon check
            // share the minimum-finding work. The disabled-profiler path
            // costs a couple of `Option` tests per iteration. When profiling,
            // the clock is read only on 1-in-TIME_SAMPLE_EVERY events and the
            // measured durations are scaled by the stride — on hosts with a
            // slow clocksource, per-event `Instant::now()` would otherwise
            // dominate the run it is supposed to measure.
            let pop_started = self
                .profiler
                .as_ref()
                .filter(|p| p.events.is_multiple_of(TIME_SAMPLE_EVERY))
                .map(|_| Instant::now());
            let (at, event) = match self.queue.pop_before(self.horizon) {
                Popped::Event(e) => e,
                Popped::AtOrAfter(_) => {
                    // Park the clock at the horizon so callers can read a
                    // well-defined end time.
                    self.now = self.horizon.expect("horizon vanished");
                    return RunOutcome::HorizonReached;
                }
                Popped::Empty => return RunOutcome::Drained,
            };
            debug_assert!(at >= self.now, "event queue violated time order");
            self.now = at;
            self.events_processed += 1;
            let depth = self.queue.len();
            if let Some(prof) = self.profiler.as_mut() {
                prof.events += 1;
                if prof.events.is_multiple_of(DEPTH_SAMPLE_EVERY) {
                    prof.queue_depth.push(at.as_secs_f64(), depth as f64);
                }
            }
            if let Some(t0) = pop_started {
                let dispatch_started = Instant::now();
                let scale = TIME_SAMPLE_EVERY as f64;
                let prof = self.profiler.as_mut().expect("profiler vanished");
                prof.timed_events += 1;
                prof.pop_secs += dispatch_started.duration_since(t0).as_secs_f64() * scale;
                handler(self, event);
                if let Some(prof) = self.profiler.as_mut() {
                    prof.dispatch_secs += dispatch_started.elapsed().as_secs_f64() * scale;
                }
            } else {
                handler(self, event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn drains_in_order_and_advances_clock() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_secs(2), Ev::Tick(2));
        eng.schedule(SimTime::from_secs(1), Ev::Tick(1));
        let mut log = Vec::new();
        let outcome = eng.run(|eng, Ev::Tick(i)| log.push((eng.now().as_secs_f64(), i)));
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(log, vec![(1.0, 1), (2.0, 2)]);
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    fn handler_can_schedule_cascades() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::ZERO, Ev::Tick(0));
        let mut count = 0u32;
        eng.run(|eng, Ev::Tick(i)| {
            count += 1;
            if i < 9 {
                eng.schedule_after(SimDuration::from_secs(1), Ev::Tick(i + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(eng.now(), SimTime::from_secs(9));
    }

    #[test]
    fn horizon_leaves_later_events_queued() {
        let mut eng = Engine::new();
        eng.set_horizon(SimTime::from_secs(5));
        for s in [1u64, 4, 5, 9] {
            eng.schedule(SimTime::from_secs(s), Ev::Tick(s as u32));
        }
        let mut fired = Vec::new();
        let outcome = eng.run(|_, Ev::Tick(i)| fired.push(i));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(fired, vec![1, 4]);
        assert_eq!(eng.pending(), 2);
        assert_eq!(eng.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stop_request_halts_immediately() {
        let mut eng = Engine::new();
        for s in 0..10u64 {
            eng.schedule(SimTime::from_secs(s), Ev::Tick(s as u32));
        }
        let mut fired = 0;
        let outcome = eng.run(|eng, Ev::Tick(i)| {
            fired += 1;
            if i == 3 {
                eng.stop();
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(fired, 4);
        assert_eq!(eng.pending(), 6);
    }

    #[test]
    fn event_limit_is_a_backstop() {
        let mut eng = Engine::new();
        eng.set_event_limit(100);
        eng.schedule(SimTime::ZERO, Ev::Tick(0));
        let outcome = eng.run(|eng, Ev::Tick(i)| {
            // Pathological self-perpetuating event at the same instant.
            eng.schedule(eng.now(), Ev::Tick(i));
        });
        assert_eq!(outcome, RunOutcome::EventLimit);
        assert_eq!(eng.events_processed(), 100);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_secs(1), Ev::Tick(1));
        eng.run(|eng, _| {
            eng.schedule(SimTime::ZERO, Ev::Tick(0));
        });
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_secs(1), Ev::Tick(1));
        let doomed = eng.schedule(SimTime::from_secs(2), Ev::Tick(2));
        eng.schedule(SimTime::from_secs(3), Ev::Tick(3));
        assert!(eng.cancel(doomed));
        let mut fired = Vec::new();
        let outcome = eng.run(|_, Ev::Tick(i)| fired.push(i));
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(fired, vec![1, 3]);
    }

    #[test]
    fn handler_can_cancel_a_later_event() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_secs(1), Ev::Tick(1));
        let retry = eng.schedule(SimTime::from_secs(5), Ev::Tick(5));
        let mut fired = Vec::new();
        eng.run(|eng, Ev::Tick(i)| {
            fired.push(i);
            if i == 1 {
                assert!(eng.cancel(retry));
            }
        });
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn profiler_observes_without_perturbing() {
        let run = |profiled: bool| {
            let mut eng = Engine::new();
            if profiled {
                eng.enable_profiler();
            }
            eng.schedule(SimTime::ZERO, Ev::Tick(0));
            let mut log = Vec::new();
            eng.run(|eng, Ev::Tick(i)| {
                log.push((eng.now(), i));
                if i < 99 {
                    eng.schedule_after(SimDuration::from_secs(1), Ev::Tick(i + 1));
                }
            });
            (log, eng.take_profiler())
        };
        let (plain_log, none) = run(false);
        assert!(none.is_none());
        let (profiled_log, prof) = run(true);
        assert_eq!(plain_log, profiled_log);
        let prof = prof.expect("profiler enabled");
        assert_eq!(prof.events, 100);
        assert!(prof.pop_secs >= 0.0);
        assert!(prof.dispatch_secs >= 0.0);
    }

    #[test]
    fn rerun_after_horizon_continues() {
        let mut eng = Engine::new();
        eng.set_horizon(SimTime::from_secs(2));
        eng.schedule(SimTime::from_secs(1), Ev::Tick(1));
        eng.schedule(SimTime::from_secs(3), Ev::Tick(3));
        let mut fired = Vec::new();
        eng.run(|_, Ev::Tick(i)| fired.push(i));
        eng.set_horizon(SimTime::from_secs(10));
        eng.run(|_, Ev::Tick(i)| fired.push(i));
        assert_eq!(fired, vec![1, 3]);
    }
}
