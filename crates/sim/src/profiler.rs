//! Opt-in engine self-profiling.
//!
//! Answers "where does the wall clock go?" for a simulation run: queue pops
//! vs. handler dispatch in the sequential [`crate::Engine`], and busy vs.
//! barrier-wait vs. idle-fast-forward time in the [`crate::ShardedEngine`].
//! Profiling is off by default and costs nothing when disabled (a couple
//! of `Option` checks per loop iteration). When enabled, clock reads are
//! **strided**: only one event in [`TIME_SAMPLE_EVERY`] is actually timed,
//! and the measured duration is scaled by the stride, so `pop_secs` and
//! `dispatch_secs` are unbiased estimates of the totals. On hosts with a
//! slow monotonic-clock source (hundreds of ns per read) this keeps the
//! enabled-profiler overhead to a fraction of a percent instead of
//! multiplying per-event cost. Queue depth is sampled into a bounded
//! [`WindowedSeries`], so even a multi-hour run produces a fixed-size
//! profile.
//!
//! All times here are **wall-clock** seconds, not simulated time — a
//! profile is inherently nondeterministic and must never feed back into
//! model state or deterministic reports.

use dup_stats::WindowedSeries;
use serde::{Deserialize, Serialize};

/// How many events between queue-depth samples (power of two so the check
/// compiles to a mask).
pub const DEPTH_SAMPLE_EVERY: u64 = 1024;

/// How many events between timed events (power of two so the check
/// compiles to a mask). Measured durations are scaled by this stride, so
/// the accumulated phase totals estimate the full run.
pub const TIME_SAMPLE_EVERY: u64 = 256;

/// Retained queue-depth samples; at [`DEPTH_SAMPLE_EVERY`] spacing this
/// window covers the most recent ~4M events.
pub const DEPTH_WINDOW: usize = 4096;

/// Wall-clock phase breakdown of a sequential [`crate::Engine`] run.
///
/// Accumulated by the engine when profiling is enabled; harvest with
/// [`crate::Engine::take_profiler`]. Serializable so harness reports can
/// embed it (as optional, non-deterministic data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineProfiler {
    /// Events dispatched while profiling was active.
    pub events: u64,
    /// Events whose pop/dispatch phases were actually clocked (one in
    /// [`TIME_SAMPLE_EVERY`]).
    pub timed_events: u64,
    /// Estimated wall-clock seconds spent popping the pending-event queue
    /// (sampled durations scaled by the stride).
    pub pop_secs: f64,
    /// Estimated wall-clock seconds spent inside event handlers (sampled
    /// durations scaled by the stride).
    pub dispatch_secs: f64,
    /// Estimated wall-clock seconds spent emitting probe events, when the
    /// caller routes probes through a timing wrapper (0 otherwise; the
    /// engine itself cannot see probe calls).
    pub probe_secs: f64,
    /// Queue depth sampled every [`DEPTH_SAMPLE_EVERY`] events, keyed by
    /// simulation time in seconds.
    pub queue_depth: WindowedSeries,
}

impl Default for EngineProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineProfiler {
    /// Creates an empty profiler with the default depth-sampling window.
    pub fn new() -> Self {
        EngineProfiler {
            events: 0,
            timed_events: 0,
            pop_secs: 0.0,
            dispatch_secs: 0.0,
            probe_secs: 0.0,
            queue_depth: WindowedSeries::new(DEPTH_WINDOW),
        }
    }

    /// Total attributed wall-clock seconds (pop + dispatch).
    pub fn total_secs(&self) -> f64 {
        self.pop_secs + self.dispatch_secs
    }

    /// Mean handler dispatch cost in microseconds, `None` before any event.
    pub fn mean_dispatch_us(&self) -> Option<f64> {
        if self.events == 0 {
            None
        } else {
            Some(self.dispatch_secs * 1e6 / self.events as f64)
        }
    }
}

/// Wall-clock profile of a [`crate::ShardedEngine`] run.
///
/// `busy_secs[i]` sums shard `i`'s in-window processing time;
/// `barrier_wait_secs[i]` sums, per window, how long shard `i` sat finished
/// while the slowest shard of that window was still running — the direct
/// measure of load imbalance across the space partition.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardProfile {
    /// Per-shard wall-clock seconds spent processing events inside windows.
    pub busy_secs: Vec<f64>,
    /// Per-shard wall-clock seconds waiting at window barriers for the
    /// slowest shard.
    pub barrier_wait_secs: Vec<f64>,
    /// Wall-clock seconds merging cross-shard outboxes at barriers.
    pub merge_secs: f64,
    /// Windows whose start fast-forwarded over an idle gap.
    pub fast_forward_windows: u64,
    /// Total simulated seconds skipped by idle fast-forwarding.
    pub fast_forward_sim_secs: f64,
}

impl ShardProfile {
    /// Creates an empty profile for `shards` shards.
    pub fn new(shards: usize) -> Self {
        ShardProfile {
            busy_secs: vec![0.0; shards],
            barrier_wait_secs: vec![0.0; shards],
            merge_secs: 0.0,
            fast_forward_windows: 0,
            fast_forward_sim_secs: 0.0,
        }
    }

    /// Folds one window's per-shard wall durations into the totals.
    pub fn record_window(&mut self, durations: &[f64]) {
        let slowest = durations.iter().copied().fold(0.0, f64::max);
        for (i, &d) in durations.iter().enumerate() {
            self.busy_secs[i] += d;
            self.barrier_wait_secs[i] += slowest - d;
        }
    }

    /// Ratio of the busiest shard's busy time to the mean — 1.0 means a
    /// perfectly balanced partition.
    pub fn busy_skew(&self) -> Option<f64> {
        if self.busy_secs.is_empty() {
            return None;
        }
        let max = self.busy_secs.iter().copied().fold(0.0, f64::max);
        let mean = self.busy_secs.iter().sum::<f64>() / self.busy_secs.len() as f64;
        if mean > 0.0 {
            Some(max / mean)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_means() {
        let mut p = EngineProfiler::new();
        assert_eq!(p.mean_dispatch_us(), None);
        p.events = 4;
        p.dispatch_secs = 8e-6;
        p.pop_secs = 2e-6;
        assert_eq!(p.mean_dispatch_us(), Some(2.0));
        assert!((p.total_secs() - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn shard_profile_window_accounting() {
        let mut p = ShardProfile::new(3);
        p.record_window(&[1.0, 3.0, 2.0]);
        p.record_window(&[2.0, 2.0, 2.0]);
        assert_eq!(p.busy_secs, vec![3.0, 5.0, 4.0]);
        assert_eq!(p.barrier_wait_secs, vec![2.0, 0.0, 1.0]);
        // max busy 5, mean 4 → skew 1.25
        assert!((p.busy_skew().unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_shard_profile_has_no_skew() {
        assert_eq!(ShardProfile::new(0).busy_skew(), None);
        assert_eq!(ShardProfile::new(2).busy_skew(), None);
    }

    #[test]
    fn profiler_serializes() {
        let mut p = EngineProfiler::new();
        p.queue_depth.push(1.0, 42.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: EngineProfiler = serde_json::from_str(&json).unwrap();
        assert_eq!(back.queue_depth.len(), 1);
    }
}
