//! Seeded random-number streams.
//!
//! Every stochastic component of a simulation (topology generation, query
//! arrivals, query origins, hop latencies, churn, …) draws from its own
//! stream derived from the master seed and a stable string label. This gives
//! two properties the experiments rely on:
//!
//! * **Reproducibility** — one `(master_seed, label)` pair always yields the
//!   same stream, on every platform.
//! * **Independence under refactoring** — adding a new consumer of
//!   randomness (a new label) does not perturb any existing stream, so
//!   baseline and variant runs stay comparable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout the simulator. `SmallRng` (xoshiro-family) is
/// deterministic for a fixed seed and fast enough for tens of millions of
/// draws per run.
pub type StreamRng = SmallRng;

/// Derives a 64-bit stream seed from a master seed and a stable label using
/// an FNV-1a / splitmix64 construction. The label is hashed with FNV-1a
/// (stable across platforms and Rust versions, unlike `DefaultHasher`), then
/// mixed with the master seed through splitmix64 finalizers.
pub fn stream_seed(master_seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(splitmix64(master_seed) ^ h)
}

/// Creates the RNG for `(master_seed, label)`.
pub fn stream_rng(master_seed: u64, label: &str) -> StreamRng {
    StreamRng::seed_from_u64(stream_seed(master_seed, label))
}

/// splitmix64 finalizer: a strong 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream_rng(42, "arrivals");
        let mut b = stream_rng(42, "arrivals");
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(stream_seed(42, "arrivals"), stream_seed(42, "origins"));
        assert_ne!(stream_seed(42, "a"), stream_seed(42, "b"));
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(stream_seed(1, "arrivals"), stream_seed(2, "arrivals"));
    }

    #[test]
    fn stream_seed_is_stable() {
        // Regression pin: if this changes, every recorded experiment changes.
        assert_eq!(
            stream_seed(0, ""),
            splitmix64(splitmix64(0) ^ 0xcbf2_9ce4_8422_2325)
        );
        let pinned = stream_seed(42, "arrivals");
        assert_eq!(pinned, stream_seed(42, "arrivals"));
    }

    #[test]
    fn labels_with_shared_prefix_differ() {
        assert_ne!(stream_seed(7, "node"), stream_seed(7, "node2"));
        assert_ne!(stream_seed(7, "node/1"), stream_seed(7, "node/2"));
    }
}
