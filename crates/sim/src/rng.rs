//! Seeded random-number streams.
//!
//! Every stochastic component of a simulation (topology generation, query
//! arrivals, query origins, hop latencies, churn, …) draws from its own
//! stream derived from the master seed and a stable string label. This gives
//! two properties the experiments rely on:
//!
//! * **Reproducibility** — one `(master_seed, label)` pair always yields the
//!   same stream, on every platform.
//! * **Independence under refactoring** — adding a new consumer of
//!   randomness (a new label) does not perturb any existing stream, so
//!   baseline and variant runs stay comparable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout the simulator. `SmallRng` (xoshiro-family) is
/// deterministic for a fixed seed and fast enough for tens of millions of
/// draws per run.
pub type StreamRng = SmallRng;

/// Derives a 64-bit stream seed from a master seed and a stable label using
/// an FNV-1a / splitmix64 construction. The label is hashed with FNV-1a
/// (stable across platforms and Rust versions, unlike `DefaultHasher`), then
/// mixed with the master seed through splitmix64 finalizers.
pub fn stream_seed(master_seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(splitmix64(master_seed) ^ h)
}

/// Creates the RNG for `(master_seed, label)`.
pub fn stream_rng(master_seed: u64, label: &str) -> StreamRng {
    StreamRng::seed_from_u64(stream_seed(master_seed, label))
}

/// A family of per-sender RNG streams derived lazily from one
/// `(master_seed, label)` pair: stream `i` is `stream_rng(seed, "label/i")`.
///
/// Components whose draws are attributable to a *sender* (hop latencies,
/// fault decisions, retransmit jitter) use one stream per sender instead of
/// a single shared stream. A sender's draw sequence then depends only on
/// that sender's own send order — not on how sends from different nodes
/// interleave — which is what lets a space-partitioned run reproduce the
/// sequential run's draws exactly: each shard replays its own senders'
/// sequences in local event order.
///
/// Streams materialize on first use, so a run only pays for the senders
/// that actually send.
#[derive(Debug, Clone)]
pub struct SenderStreams {
    seed: u64,
    label: String,
    streams: Vec<Option<StreamRng>>,
}

impl SenderStreams {
    /// Creates the family; no stream is seeded until its first draw.
    pub fn new(seed: u64, label: impl Into<String>) -> Self {
        SenderStreams {
            seed,
            label: label.into(),
            streams: Vec::new(),
        }
    }

    /// The stream for sender index `idx`, seeding it on first access.
    pub fn rng(&mut self, idx: usize) -> &mut StreamRng {
        if idx >= self.streams.len() {
            self.streams.resize_with(idx + 1, || None);
        }
        let (seed, label) = (self.seed, &self.label);
        self.streams[idx].get_or_insert_with(|| stream_rng(seed, &format!("{label}/{idx}")))
    }

    /// Number of streams that have been seeded so far (diagnostics; also
    /// how tests assert that a disabled layer drew nothing).
    pub fn initialized(&self) -> usize {
        self.streams.iter().filter(|s| s.is_some()).count()
    }
}

/// splitmix64 finalizer: a strong 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream_rng(42, "arrivals");
        let mut b = stream_rng(42, "arrivals");
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(stream_seed(42, "arrivals"), stream_seed(42, "origins"));
        assert_ne!(stream_seed(42, "a"), stream_seed(42, "b"));
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(stream_seed(1, "arrivals"), stream_seed(2, "arrivals"));
    }

    #[test]
    fn stream_seed_is_stable() {
        // Regression pin: if this changes, every recorded experiment changes.
        assert_eq!(
            stream_seed(0, ""),
            splitmix64(splitmix64(0) ^ 0xcbf2_9ce4_8422_2325)
        );
        let pinned = stream_seed(42, "arrivals");
        assert_eq!(pinned, stream_seed(42, "arrivals"));
    }

    #[test]
    fn labels_with_shared_prefix_differ() {
        assert_ne!(stream_seed(7, "node"), stream_seed(7, "node2"));
        assert_ne!(stream_seed(7, "node/1"), stream_seed(7, "node/2"));
    }

    #[test]
    fn sender_streams_match_their_flat_spelling() {
        let mut fam = SenderStreams::new(42, "hop-latency");
        assert_eq!(fam.initialized(), 0);
        let mut flat = stream_rng(42, "hop-latency/5");
        for _ in 0..100 {
            assert_eq!(fam.rng(5).gen::<u64>(), flat.gen::<u64>());
        }
        // Only the touched stream materialized, despite the resize to 6.
        assert_eq!(fam.initialized(), 1);
    }

    #[test]
    fn sender_streams_are_independent_of_interleaving() {
        // Draw a/b interleaved one way, then the other: each sender's own
        // sequence is unchanged.
        let mut x = SenderStreams::new(7, "s");
        let ax: Vec<u64> = (0..3).map(|_| x.rng(0).gen()).collect();
        let bx: Vec<u64> = (0..3).map(|_| x.rng(1).gen()).collect();
        let mut y = SenderStreams::new(7, "s");
        let mut ay = Vec::new();
        let mut by = Vec::new();
        for _ in 0..3 {
            by.push(y.rng(1).gen::<u64>());
            ay.push(y.rng(0).gen::<u64>());
        }
        assert_eq!(ax, ay);
        assert_eq!(bx, by);
    }
}
