//! Deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the bottom-most substrate of the `dup-p2p` reproduction: a
//! small, allocation-conscious event engine with an integer-nanosecond clock.
//! Every higher layer (overlay, protocol schemes, workload generators,
//! experiment harness) drives its dynamics through this kernel.
//!
//! # Determinism
//!
//! Two properties make simulations reproducible bit-for-bit from a single
//! master seed:
//!
//! 1. Events are ordered by `(time, sequence-number)`, so simultaneous events
//!    fire in the order they were scheduled, independent of heap internals.
//! 2. All randomness is drawn from [`rng::StreamRng`] streams derived from a
//!    master seed with stable string labels, so adding a new consumer of
//!    randomness does not perturb existing streams.
//!
//! # Example
//!
//! ```
//! use dup_sim::{Engine, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_secs_f64(1.5), Ev::Ping(7));
//! let mut seen = Vec::new();
//! engine.run(|eng, ev| {
//!     let Ev::Ping(x) = ev;
//!     seen.push((eng.now(), x));
//! });
//! assert_eq!(seen, vec![(SimTime::from_secs_f64(1.5), 7)]);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod probe;
pub mod profiler;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;

pub use engine::{Engine, RunOutcome};
pub use probe::{FnProbe, NoopProbe, Probe, RingProbe};
pub use profiler::{EngineProfiler, ShardProfile};
pub use queue::{EventQueue, QueueBackend, TimerId};
pub use rng::{stream_rng, stream_seed, SenderStreams, StreamRng};
pub use shard::{run_shards, ShardCtx, ShardModel, ShardRunReport, ShardedEngine};
pub use time::{SimDuration, SimTime};
