//! Generic observability probes for event-driven simulations.
//!
//! A [`Probe`] is a passive observer: the simulation hands it timestamped
//! events and it records them somewhere — nowhere ([`NoopProbe`]), a bounded
//! in-memory ring ([`RingProbe`]), or an arbitrary closure ([`FnProbe`]).
//! The kernel stays agnostic about *what* an event is (the type parameter
//! `E` is supplied by the layer that owns the event vocabulary), so the same
//! trait serves protocol traces, workload audits, and test capture buffers.
//!
//! Probes must never influence the simulation: they receive `&E` after the
//! fact and have no channel back into the engine. Determinism is therefore
//! preserved whether or not a probe is attached.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A passive observer of simulation events.
pub trait Probe<E> {
    /// Records one event observed at simulated time `at`.
    fn record(&mut self, at: SimTime, event: &E);

    /// Flushes any buffered output (end of run). Default: nothing.
    fn flush(&mut self) {}
}

/// The do-nothing probe: every call compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl<E> Probe<E> for NoopProbe {
    #[inline]
    fn record(&mut self, _at: SimTime, _event: &E) {}
}

/// A bounded in-memory trace: keeps the most recent `capacity` events,
/// discarding the oldest. Useful for post-mortem inspection of long runs
/// where a full trace would not fit in memory.
#[derive(Debug, Clone)]
pub struct RingProbe<E> {
    capacity: usize,
    buf: VecDeque<(SimTime, E)>,
    /// Events seen in total, including those already discarded.
    seen: u64,
}

impl<E> RingProbe<E> {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring probe capacity must be positive");
        RingProbe {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.buf.iter()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events observed, including discarded ones.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl<E: Clone> Probe<E> for RingProbe<E> {
    fn record(&mut self, at: SimTime, event: &E) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((at, event.clone()));
        self.seen += 1;
    }
}

/// Adapts a closure into a probe.
#[derive(Debug, Clone)]
pub struct FnProbe<F>(pub F);

impl<E, F: FnMut(SimTime, &E)> Probe<E> for FnProbe<F> {
    #[inline]
    fn record(&mut self, at: SimTime, event: &E) {
        (self.0)(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_discards_oldest() {
        let mut ring = RingProbe::new(3);
        for i in 0..5u32 {
            ring.record(SimTime::from_secs(i as u64), &i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 5);
        let kept: Vec<u32> = ring.events().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn fn_probe_forwards() {
        let mut seen = Vec::new();
        {
            let mut probe = FnProbe(|at: SimTime, e: &u32| seen.push((at, *e)));
            probe.record(SimTime::from_secs(1), &7);
        }
        assert_eq!(seen, vec![(SimTime::from_secs(1), 7)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RingProbe::<u32>::new(0);
    }

    #[test]
    fn noop_probe_accepts_anything() {
        let mut probe = NoopProbe;
        Probe::<&str>::record(&mut probe, SimTime::ZERO, &"ignored");
        Probe::<&str>::flush(&mut probe);
    }
}
