//! Simulated time: an integer nanosecond clock.
//!
//! Floating-point clocks accumulate rounding error and make event ordering
//! platform-dependent; an integer clock keeps the simulation deterministic.
//! `u64` nanoseconds cover ~584 simulated years, far beyond the paper's
//! 180 000-second runs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per second, as used by [`SimTime`] and [`SimDuration`].
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds (saturating; negative
    /// inputs clamp to zero).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_f64_to_nanos(secs))
    }

    /// Raw nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Subtracts a duration, saturating at [`SimTime::ZERO`].
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from whole minutes (the paper's TTL is 60 min).
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds (saturating; negative
    /// inputs clamp to zero).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_f64_to_nanos(secs))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Scales the duration by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Converts fractional seconds to nanoseconds with clamping: negative and NaN
/// inputs become 0, overlarge inputs become `u64::MAX`.
fn secs_f64_to_nanos(secs: f64) -> u64 {
    // `secs.is_nan() || secs <= 0.0` spelled so NaN takes the zero branch.
    if secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC as f64;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: scheduled past u64::MAX nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracted a later instant from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(
            SimTime::from_secs(2),
            SimTime::from_nanos(2 * NANOS_PER_SEC)
        );
        assert_eq!(SimTime::from_secs_f64(2.0), SimTime::from_secs(2));
        assert_eq!(SimDuration::from_mins(60), SimDuration::from_secs(3600));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_secs_f64(), 10.25);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn huge_seconds_clamp_to_max() {
        assert_eq!(SimTime::from_secs_f64(1e300), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_sub_panics_on_underflow() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_secs(1) < SimDuration::from_mins(1));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "1.500000s");
        assert_eq!(format!("{:?}", SimTime::from_secs(2)), "t=2.000000s");
    }
}
