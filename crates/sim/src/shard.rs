//! Conservative parallel discrete-event execution.
//!
//! [`ShardedEngine`] partitions a model across shards, each owning its own
//! [`EventQueue`], and advances all shards in lockstep *lookahead windows*:
//!
//! 1. Every shard independently processes its local events with timestamps
//!    inside the current window `[start, start + lookahead)`. Within a
//!    window shards share no mutable state, so this step may run on one
//!    thread per shard.
//! 2. Cross-shard messages emitted during the window are buffered in
//!    per-shard outboxes. The conservative guarantee — a cross-shard send
//!    must be timestamped at least `lookahead` after the sender's clock —
//!    puts every such message at or beyond the window's end, so no shard
//!    can miss one that it should already have processed.
//! 3. At the window barrier the outboxes are merged and delivered in a
//!    canonical order — `(timestamp, source shard, emission index)` — so
//!    destination queues assign tie-breaking sequence numbers identically
//!    no matter how many threads ran step 1. Threaded and sequential
//!    execution are therefore **bit-identical**.
//!
//! The window start fast-forwards over idle gaps (to the earliest pending
//! event across all shards) — a function of simulation state only, so the
//! schedule of barriers is itself deterministic.
//!
//! The module also exposes [`run_shards`], the minimal fan-out primitive
//! for *ensemble* sharding (independent sub-simulations, no cross-shard
//! traffic) used by the protocol layer's `RunConfig::shards` mode.

use crate::profiler::ShardProfile;
use crate::queue::{EventQueue, Popped, QueueBackend, TimerId};
use crate::time::{SimDuration, SimTime};
use std::time::Instant;

/// A message crossing shard boundaries, delivered at the next window
/// barrier.
#[derive(Debug, Clone)]
struct CrossMsg<E> {
    at: SimTime,
    dst: u32,
    /// Emission order within the sending shard's window — the final
    /// tie-breaker of the canonical merge order.
    idx: u32,
    event: E,
}

/// Per-event context handed to [`ShardModel::handle`]: the shard's clock,
/// its local queue, and the cross-shard outbox.
pub struct ShardCtx<'a, E> {
    shard: usize,
    now: SimTime,
    lookahead: SimDuration,
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<CrossMsg<E>>,
}

impl<E> ShardCtx<'_, E> {
    /// The shard executing the current event.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The shard-local clock (the timestamp of the current event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` on this shard at `at` (≥ now; local events have no
    /// lookahead constraint). The returned handle can cancel the event via
    /// [`ShardCtx::cancel`]; callers that never cancel may ignore it.
    pub fn schedule(&mut self, at: SimTime, event: E) -> TimerId {
        assert!(at >= self.now, "scheduling into the past");
        self.queue.push(at, event)
    }

    /// Cancels a shard-local scheduled event by handle (see
    /// [`EventQueue::cancel`] for the lazy-deletion contract). Cross-shard
    /// messages cannot be cancelled — they have already left the shard.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of events pending on this shard's local queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Sends `event` to shard `dst` for delivery at `at`.
    ///
    /// # Panics
    ///
    /// Panics when `at < now + lookahead` — the conservative window
    /// protocol cannot deliver such a message in time. Model delays must
    /// respect the lookahead the engine was built with (in the maintenance
    /// protocols this simulator targets, the natural bound is the
    /// lease/maintenance tick granularity).
    pub fn send(&mut self, dst: usize, at: SimTime, event: E) {
        if dst == self.shard {
            self.schedule(at, event);
            return;
        }
        assert!(
            at >= self.now + self.lookahead,
            "cross-shard send below the lookahead window ({:?} < {:?} + {:?})",
            at,
            self.now,
            self.lookahead
        );
        let idx = self.outbox.len() as u32;
        self.outbox.push(CrossMsg {
            at,
            dst: dst as u32,
            idx,
            event,
        });
    }
}

/// One shard's model state: handles its own events, emitting follow-ups
/// through the [`ShardCtx`].
pub trait ShardModel: Send {
    /// The event type exchanged within and across shards.
    type Event: Send;

    /// Processes one event at `ctx.now()`.
    fn handle(&mut self, event: Self::Event, ctx: &mut ShardCtx<'_, Self::Event>);
}

struct ShardState<M: ShardModel> {
    model: M,
    queue: EventQueue<M::Event>,
    outbox: Vec<CrossMsg<M::Event>>,
    events: u64,
    /// Timestamp of the last event this shard popped, if any.
    last_event_at: Option<SimTime>,
}

/// Aggregate statistics of a [`ShardedEngine`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Events processed per shard.
    pub events_per_shard: Vec<u64>,
    /// Events processed across all shards.
    pub total_events: u64,
    /// Cross-shard messages delivered.
    pub cross_messages: u64,
    /// Lookahead windows executed (barrier count).
    pub windows: u64,
    /// Per-shard event-queue high-water marks.
    pub peak_queue_depth_per_shard: Vec<u64>,
}

/// A conservative parallel discrete-event engine (see the module docs for
/// the window protocol and its determinism argument).
pub struct ShardedEngine<M: ShardModel> {
    shards: Vec<ShardState<M>>,
    lookahead: SimDuration,
    now: SimTime,
    windows: u64,
    cross_messages: u64,
    profile: Option<Box<ShardProfile>>,
}

impl<M: ShardModel> ShardedEngine<M> {
    /// Creates an engine over `models` (one per shard) with the given
    /// lookahead window, using the default queue backend.
    ///
    /// # Panics
    ///
    /// Panics on zero shards or a zero lookahead (a zero window can never
    /// make progress).
    pub fn new(models: Vec<M>, lookahead: SimDuration) -> Self {
        Self::with_backend(models, lookahead, QueueBackend::DEFAULT_HEAP)
    }

    /// [`ShardedEngine::new`] with an explicit queue backend for the
    /// per-shard queues.
    pub fn with_backend(models: Vec<M>, lookahead: SimDuration, backend: QueueBackend) -> Self {
        assert!(
            !models.is_empty(),
            "a sharded engine needs at least one shard"
        );
        assert!(
            lookahead > SimDuration::ZERO,
            "a zero lookahead window cannot make progress"
        );
        ShardedEngine {
            shards: models
                .into_iter()
                .map(|model| ShardState {
                    model,
                    queue: EventQueue::with_backend(backend),
                    outbox: Vec::new(),
                    events: 0,
                    last_event_at: None,
                })
                .collect(),
            lookahead,
            now: SimTime::ZERO,
            windows: 0,
            cross_messages: 0,
            profile: None,
        }
    }

    /// Enables self-profiling: per-shard busy and barrier-wait wall time,
    /// idle fast-forward accounting, and outbox-merge time. Wall-clock
    /// only — never affects the (bit-identical) event schedule.
    pub fn enable_profiler(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(ShardProfile::new(self.shards.len())));
        }
    }

    /// The accumulated profile, if profiling is enabled.
    pub fn profile(&self) -> Option<&ShardProfile> {
        self.profile.as_deref()
    }

    /// Detaches and returns the accumulated profile, disabling profiling.
    pub fn take_profile(&mut self) -> Option<ShardProfile> {
        self.profile.take().map(|p| *p)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Seeds an initial event on `shard` at `at`. Only valid before the
    /// clock has advanced past `at`.
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: M::Event) {
        assert!(at >= self.now, "scheduling into the past");
        self.shards[shard].queue.push(at, event);
    }

    /// Earliest pending event time across all shards.
    fn earliest(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.queue.peek_time()).min()
    }

    /// Runs one shard up to (exclusive) `horizon`. Free function so the
    /// threaded path can move a disjoint `&mut` per shard into its worker.
    fn advance(shard: usize, state: &mut ShardState<M>, horizon: SimTime, lookahead: SimDuration) {
        while let Popped::Event((now, event)) = state.queue.pop_before(Some(horizon)) {
            state.events += 1;
            state.last_event_at = Some(now);
            let mut ctx = ShardCtx {
                shard,
                now,
                lookahead,
                queue: &mut state.queue,
                outbox: &mut state.outbox,
            };
            state.model.handle(event, &mut ctx);
        }
    }

    /// Advances every shard to `end`, one worker thread per shard when
    /// `threaded`. Returns per-shard wall durations when `profiling` (the
    /// unprofiled path never reads the clock).
    fn advance_all(
        shards: &mut [ShardState<M>],
        end: SimTime,
        lookahead: SimDuration,
        threaded: bool,
        profiling: bool,
    ) -> Option<Vec<f64>> {
        // Materialize the per-shard results eagerly: every shard must
        // advance regardless of whether anyone wants the timings.
        let durations: Vec<Option<f64>> = if threaded && shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .enumerate()
                    .map(|(i, state)| {
                        scope.spawn(move || {
                            let started = profiling.then(Instant::now);
                            Self::advance(i, state, end, lookahead);
                            started.map(|t| t.elapsed().as_secs_f64())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        } else {
            shards
                .iter_mut()
                .enumerate()
                .map(|(i, state)| {
                    let started = profiling.then(Instant::now);
                    Self::advance(i, state, end, lookahead);
                    started.map(|t| t.elapsed().as_secs_f64())
                })
                .collect()
        };
        if profiling {
            Some(durations.into_iter().flatten().collect())
        } else {
            None
        }
    }

    /// Fast-forwards the clock to `earliest` when it lies ahead, recording
    /// the skipped idle gap in the profile.
    fn fast_forward_to(&mut self, earliest: SimTime) {
        if earliest > self.now {
            if let Some(p) = self.profile.as_mut() {
                p.fast_forward_windows += 1;
                p.fast_forward_sim_secs += earliest.as_secs_f64() - self.now.as_secs_f64();
            }
            self.now = earliest;
        }
    }

    /// One window's barrier: merge outboxes (timed when profiling) and fold
    /// the per-shard advance durations into the profile.
    fn finish_window(&mut self, durations: Option<Vec<f64>>) {
        let merge_started = self.profile.as_ref().map(|_| Instant::now());
        self.merge_outboxes();
        if let Some(p) = self.profile.as_mut() {
            p.merge_secs += merge_started.expect("profiling").elapsed().as_secs_f64();
            if let Some(durations) = durations {
                p.record_window(&durations);
            }
        }
        self.windows += 1;
    }

    /// Runs one lookahead window: advance every shard to the window end,
    /// then merge and deliver the cross-shard outboxes in canonical order.
    /// Returns false when the engine is idle (nothing was pending).
    fn step(&mut self, threaded: bool) -> bool {
        // Fast-forward over idle gaps; a function of queue state only, so
        // threaded and sequential runs see the same barrier schedule.
        match self.earliest() {
            Some(t) => self.fast_forward_to(t),
            None => return false,
        }
        let horizon = self.now + self.lookahead;
        let durations = Self::advance_all(
            &mut self.shards,
            horizon,
            self.lookahead,
            threaded,
            self.profile.is_some(),
        );
        self.finish_window(durations);
        self.now = horizon;
        true
    }

    /// Barrier: delivers every shard's outbox in the canonical
    /// `(time, source shard, emission index)` order, which makes
    /// destination-queue sequence numbers independent of thread scheduling.
    fn merge_outboxes(&mut self) {
        let mut inflight: Vec<(SimTime, u32, u32, CrossMsg<M::Event>)> = Vec::new();
        for (src, state) in self.shards.iter_mut().enumerate() {
            for msg in state.outbox.drain(..) {
                inflight.push((msg.at, src as u32, msg.idx, msg));
            }
        }
        inflight.sort_by_key(|&(at, src, idx, _)| (at, src, idx));
        self.cross_messages += inflight.len() as u64;
        for (_, _, _, msg) in inflight {
            self.shards[msg.dst as usize].queue.push(msg.at, msg.event);
        }
    }

    /// Runs lookahead windows until no pending event lies strictly before
    /// `horizon`, then parks the clock there. Windows are clamped to the
    /// horizon, so events at or beyond it stay queued — the sharded
    /// equivalent of [`crate::Engine::set_horizon`] + run. Clamping never
    /// strands a cross-shard message: a message emitted in a window starting
    /// at `start` is timestamped ≥ its sender's clock + lookahead ≥
    /// `start` + lookahead ≥ the clamped window end, so it is merged at the
    /// barrier before any shard's clock can pass it.
    pub fn run_until(&mut self, horizon: SimTime, threaded: bool) {
        loop {
            let earliest = match self.earliest() {
                Some(t) if t < horizon => t,
                _ => break,
            };
            self.fast_forward_to(earliest);
            let end = (self.now + self.lookahead).min(horizon);
            let durations = Self::advance_all(
                &mut self.shards,
                end,
                self.lookahead,
                threaded,
                self.profile.is_some(),
            );
            self.finish_window(durations);
            self.now = end;
        }
        self.now = horizon.max(self.now);
    }

    /// Runs `f` once per shard (in shard order, `f(model, ctx)` — the
    /// shard index is `ctx.shard()`) at instant `at` with every queue
    /// quiescent, then merges the cross-shard sends `f` emitted in
    /// canonical order. This is how a space-parallel run injects
    /// synchronized model transitions — initial seeding at t = 0, heal
    /// phases after a drain — without violating the window protocol: with
    /// no event in flight anywhere, a barrier is trivially safe.
    ///
    /// # Panics
    ///
    /// Panics when any shard still has pending events (the caller must
    /// drain first) — injecting under in-flight traffic would reorder it.
    pub fn barrier_inject<F>(&mut self, at: SimTime, mut f: F)
    where
        F: FnMut(&mut M, &mut ShardCtx<'_, M::Event>),
    {
        assert!(
            self.shards.iter().all(|s| s.queue.is_empty()),
            "barrier_inject requires drained shard queues"
        );
        self.now = at;
        let lookahead = self.lookahead;
        for (i, state) in self.shards.iter_mut().enumerate() {
            let mut ctx = ShardCtx {
                shard: i,
                now: at,
                lookahead,
                queue: &mut state.queue,
                outbox: &mut state.outbox,
            };
            f(&mut state.model, &mut ctx);
        }
        self.merge_outboxes();
    }

    /// Events processed so far, per shard.
    pub fn events_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.events).collect()
    }

    /// Cross-shard messages merged so far.
    pub fn cross_messages(&self) -> u64 {
        self.cross_messages
    }

    /// Lookahead windows executed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Per-shard event-queue high-water marks.
    pub fn peak_queue_depth_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.queue.peak_len() as u64)
            .collect()
    }

    /// The latest timestamp any shard has popped, across the whole run —
    /// i.e. the global "last event" time, which a drained space-parallel
    /// run uses to synchronize post-run injections with the sequential
    /// engine's parked clock.
    pub fn last_event_time(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.last_event_at).max()
    }

    /// Read access to the shard models, in shard order.
    pub fn models(&self) -> impl Iterator<Item = &M> {
        self.shards.iter().map(|s| &s.model)
    }

    /// Mutable access to one shard's model (post-drain bookkeeping).
    pub fn model_mut(&mut self, shard: usize) -> &mut M {
        &mut self.shards[shard].model
    }

    /// Runs until every shard's queue drains. `threaded` selects one worker
    /// thread per shard inside each window; the result is bit-identical
    /// either way.
    pub fn run(&mut self, threaded: bool) -> ShardRunReport {
        while self.step(threaded) {}
        ShardRunReport {
            events_per_shard: self.shards.iter().map(|s| s.events).collect(),
            total_events: self.shards.iter().map(|s| s.events).sum(),
            cross_messages: self.cross_messages,
            windows: self.windows,
            peak_queue_depth_per_shard: self
                .shards
                .iter()
                .map(|s| s.queue.peak_len() as u64)
                .collect(),
        }
    }

    /// Consumes the engine, returning the shard models (for post-run
    /// inspection of model state).
    pub fn into_models(self) -> Vec<M> {
        self.shards.into_iter().map(|s| s.model).collect()
    }
}

/// Runs `f(shard)` for `shard` in `0..n`, one scoped worker thread per
/// shard when `threaded` (inline otherwise), returning results in shard
/// order. The fan-out primitive for ensemble sharding: each worker runs an
/// independent sub-simulation, so determinism reduces to each `f` being
/// deterministic in its argument.
pub fn run_shards<T, F>(n: usize, threaded: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if !threaded || n <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n).map(|i| scope.spawn(move || f(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A PHOLD-style workload: every event re-schedules locally and, with
    /// probability ~1/4, bounces a message to the next shard at exactly the
    /// lookahead bound plus jitter. Each shard logs `(time, payload)` so
    /// runs can be compared event-for-event.
    struct Phold {
        rng: u64,
        shard: usize,
        shards: usize,
        hops_left: u32,
        log: Vec<(SimTime, u64)>,
    }

    impl Phold {
        fn new(shard: usize, shards: usize, hops: u32) -> Self {
            Phold {
                rng: 0x9E37_79B9_7F4A_7C15 ^ (shard as u64) << 17,
                shard,
                shards,
                hops_left: hops,
                log: Vec::new(),
            }
        }

        fn next(&mut self) -> u64 {
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            self.rng
        }
    }

    impl ShardModel for Phold {
        type Event = u64;

        fn handle(&mut self, event: u64, ctx: &mut ShardCtx<'_, u64>) {
            self.log.push((ctx.now(), event));
            if self.hops_left == 0 {
                return;
            }
            self.hops_left -= 1;
            let jitter = SimDuration::from_nanos(self.next() % 1_000_000);
            if self.next().is_multiple_of(4) {
                let dst = (self.shard + 1) % self.shards;
                let at = ctx.now() + SimDuration::from_nanos(10_000_000) + jitter;
                ctx.send(dst, at, event.wrapping_mul(3).wrapping_add(1));
            } else {
                let at = ctx.now() + SimDuration::from_nanos(300_000) + jitter;
                ctx.schedule(at, event.wrapping_add(1));
            }
        }
    }

    fn phold_engine(shards: usize, hops: u32) -> ShardedEngine<Phold> {
        let models = (0..shards).map(|i| Phold::new(i, shards, hops)).collect();
        let mut eng = ShardedEngine::new(models, SimDuration::from_nanos(10_000_000));
        for i in 0..shards {
            // Stagger the seeds so windows start with uneven load.
            eng.schedule(i, SimTime::from_nanos(137 * i as u64), i as u64);
        }
        eng
    }

    #[test]
    fn threaded_run_is_bit_identical_to_sequential() {
        let mut seq = phold_engine(4, 400);
        let seq_report = seq.run(false);
        let seq_logs: Vec<_> = seq.into_models().into_iter().map(|m| m.log).collect();

        let mut par = phold_engine(4, 400);
        let par_report = par.run(true);
        let par_logs: Vec<_> = par.into_models().into_iter().map(|m| m.log).collect();

        assert_eq!(seq_report, par_report);
        assert_eq!(seq_logs, par_logs);
        assert!(
            seq_report.cross_messages > 0,
            "workload never crossed shards"
        );
        assert_eq!(
            seq_report.total_events,
            seq_logs.iter().map(|l| l.len() as u64).sum()
        );
    }

    #[test]
    fn single_shard_degenerates_to_a_plain_event_loop() {
        let mut eng = phold_engine(1, 100);
        let report = eng.run(true);
        assert_eq!(report.events_per_shard.len(), 1);
        assert_eq!(report.cross_messages, 0);
        assert_eq!(report.total_events, 101);
    }

    #[test]
    fn idle_gaps_fast_forward_instead_of_spinning() {
        struct Sparse;
        impl ShardModel for Sparse {
            type Event = ();
            fn handle(&mut self, _: (), _: &mut ShardCtx<'_, ()>) {}
        }
        let mut eng = ShardedEngine::new(vec![Sparse, Sparse], SimDuration::from_nanos(1_000_000));
        // Three events separated by ~an hour: spinning 1 ms windows across
        // the gaps would take millions of barriers.
        eng.schedule(0, SimTime::from_secs(1), ());
        eng.schedule(1, SimTime::from_secs(3600), ());
        eng.schedule(0, SimTime::from_secs(7200), ());
        let report = eng.run(false);
        assert_eq!(report.total_events, 3);
        assert!(report.windows <= 3, "spun {} windows", report.windows);
    }

    #[test]
    #[should_panic(expected = "below the lookahead window")]
    fn undershooting_the_lookahead_bound_panics() {
        struct Eager;
        impl ShardModel for Eager {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut ShardCtx<'_, ()>) {
                let at = ctx.now() + SimDuration::from_nanos(1);
                ctx.send(1, at, ());
            }
        }
        let mut eng = ShardedEngine::new(vec![Eager, Eager], SimDuration::from_nanos(10_000_000));
        eng.schedule(0, SimTime::ZERO, ());
        eng.run(false);
    }

    #[test]
    fn run_until_clamps_windows_and_matches_full_run_prefix() {
        // Run to a mid-stream horizon, then to the end: the composed run's
        // logs must equal one uninterrupted run's, threaded or not.
        let mut whole = phold_engine(4, 400);
        whole.run(false);
        let whole_logs: Vec<_> = whole.into_models().into_iter().map(|m| m.log).collect();

        let mut split = phold_engine(4, 400);
        split.run_until(SimTime::from_secs(1), true);
        let mid_events: u64 = split.events_per_shard().iter().sum();
        split.run(true);
        let split_logs: Vec<_> = split.into_models().into_iter().map(|m| m.log).collect();
        assert_eq!(whole_logs, split_logs);
        assert!(mid_events > 0);

        // Events at or beyond the horizon stay queued.
        let mut parked = phold_engine(4, 400);
        parked.run_until(SimTime::from_nanos(1), false);
        let after: u64 = parked.events_per_shard().iter().sum();
        assert!(after < 401 * 4, "horizon did not stop the run");
    }

    #[test]
    fn barrier_inject_merges_canonically_after_a_drain() {
        let mut eng = phold_engine(2, 50);
        eng.run(false);
        let before: u64 = eng.events_per_shard().iter().sum();
        let t = eng.last_event_time().expect("events ran");
        eng.barrier_inject(t, |_, ctx| {
            // Each shard both schedules locally and crosses the boundary.
            let shard = ctx.shard();
            ctx.schedule(t, 1000 + shard as u64);
            ctx.send(
                1 - shard,
                t + SimDuration::from_nanos(10_000_000),
                shard as u64,
            );
        });
        eng.run(false);
        let after: u64 = eng.events_per_shard().iter().sum();
        assert!(after >= before + 4, "injected events did not run");
    }

    #[test]
    #[should_panic(expected = "requires drained shard queues")]
    fn barrier_inject_refuses_inflight_traffic() {
        let mut eng = phold_engine(2, 50);
        eng.run_until(SimTime::from_nanos(1), false);
        eng.barrier_inject(SimTime::from_secs(10), |_, _| {});
    }

    #[test]
    fn cancelled_local_timer_never_fires() {
        struct Canceller {
            fired: u64,
        }
        impl ShardModel for Canceller {
            type Event = u32;
            fn handle(&mut self, ev: u32, ctx: &mut ShardCtx<'_, u32>) {
                self.fired += 1;
                if ev == 0 {
                    let doomed = ctx.schedule(ctx.now() + SimDuration::from_nanos(5), 99);
                    assert!(ctx.cancel(doomed));
                    assert_eq!(ctx.pending(), 1, "cancelled entry still counted");
                    ctx.schedule(ctx.now() + SimDuration::from_nanos(7), 1);
                }
            }
        }
        let mut eng =
            ShardedEngine::new(vec![Canceller { fired: 0 }], SimDuration::from_nanos(1_000));
        eng.schedule(0, SimTime::ZERO, 0);
        eng.run(false);
        let models = eng.into_models();
        assert_eq!(models[0].fired, 2, "cancelled timer fired");
    }

    #[test]
    fn profiled_run_is_bit_identical_and_accounts_windows() {
        let mut plain = phold_engine(4, 400);
        let plain_report = plain.run(true);
        let plain_logs: Vec<_> = plain.into_models().into_iter().map(|m| m.log).collect();

        let mut profiled = phold_engine(4, 400);
        profiled.enable_profiler();
        let profiled_report = profiled.run(true);
        let profile = profiled.take_profile().expect("profiling enabled");
        let profiled_logs: Vec<_> = profiled.into_models().into_iter().map(|m| m.log).collect();

        assert_eq!(plain_report, profiled_report);
        assert_eq!(plain_logs, profiled_logs);
        assert_eq!(profile.busy_secs.len(), 4);
        assert!(profile.busy_secs.iter().all(|&s| s >= 0.0));
        assert!(profile.barrier_wait_secs.iter().all(|&s| s >= 0.0));
        assert!(profile.busy_skew().is_some());
    }

    #[test]
    fn profiler_counts_idle_fast_forwards() {
        struct Sparse;
        impl ShardModel for Sparse {
            type Event = ();
            fn handle(&mut self, _: (), _: &mut ShardCtx<'_, ()>) {}
        }
        let mut eng = ShardedEngine::new(vec![Sparse, Sparse], SimDuration::from_nanos(1_000_000));
        eng.enable_profiler();
        eng.schedule(0, SimTime::from_secs(1), ());
        eng.schedule(1, SimTime::from_secs(3600), ());
        eng.run(false);
        let profile = eng.take_profile().unwrap();
        assert_eq!(profile.fast_forward_windows, 2);
        assert!(profile.fast_forward_sim_secs > 3500.0);
    }

    #[test]
    fn run_shards_returns_results_in_shard_order() {
        let seq = run_shards(8, false, |i| i * i);
        let par = run_shards(8, true, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq, (0..8).map(|i| i * i).collect::<Vec<_>>());
    }
}
