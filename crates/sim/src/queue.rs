//! The pending-event set: a future-event list keyed by `(time, sequence)`.
//!
//! The sequence number breaks ties between events scheduled for the same
//! instant in FIFO order, which keeps runs deterministic regardless of how
//! the backing store resolves equal keys internally.
//!
//! Two interchangeable backends implement the same contract:
//!
//! * [`QueueBackend::Heap`] — a binary heap of compact 24-byte keys over a
//!   slab of payloads; `O(log n)` push/pop, no tuning knobs, the default.
//!   Keeping payloads out of the heap matters: sift operations move only
//!   the `(time, seq, slot)` key, not the (much larger) event, so a push
//!   or pop touches a few cache lines regardless of event size.
//! * [`QueueBackend::Bucketed`] — a calendar-queue style timing wheel of
//!   fixed-width buckets over a sliding window, with a spill-over heap for
//!   events beyond the window. Near-future events (the vast majority in a
//!   message-passing simulation: deliveries a few hop latencies out) are
//!   placed and popped in `O(1)` expected time; far-future timers pay one
//!   heap round-trip through the overflow before migrating into the wheel.
//!
//! Both backends pop in exactly `(time, seq)` order — the equivalence is
//! enforced by property tests here and by end-to-end report-identity tests
//! in the workspace `tests/` tree.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// A handle to one queued event, returned by [`EventQueue::push`] and
/// consumed by [`EventQueue::cancel`]. Wraps the event's unique insertion
/// sequence number, so handles stay valid (and unambiguous) across any
/// number of pushes and pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// Rebuilds a handle from its raw sequence number. Intended for tests
    /// and bookkeeping layers that fabricate placeholder handles; a raw
    /// value not obtained from [`TimerId::raw`] on the same queue will
    /// cancel nothing (or the wrong event), exactly as misusing the handle
    /// itself would.
    pub fn from_raw(seq: u64) -> Self {
        TimerId(seq)
    }

    /// The handle's raw sequence number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event queued for execution at a given instant.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// The total-order key: earliest time first, FIFO within an instant.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        other.key().cmp(&self.key())
    }
}

/// A compact heap entry: the full ordering key plus the slab slot holding
/// the payload. Sifts move these 24 bytes, never the event itself.
struct HeapKey {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl HeapKey {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        other.key().cmp(&self.key())
    }
}

/// The heap backend: a binary heap of [`HeapKey`]s over a payload slab with
/// an embedded free list. Slots are recycled, so the slab's footprint is the
/// queue's high-water mark, not its push count.
struct SlabHeap<E> {
    heap: BinaryHeap<HeapKey>,
    slab: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> SlabHeap<E> {
    fn with_capacity(capacity: usize) -> Self {
        SlabHeap {
            heap: BinaryHeap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(event);
                i
            }
            None => {
                let i = self.slab.len();
                assert!(i <= u32::MAX as usize, "pending-event slab overflow");
                self.slab.push(Some(event));
                i as u32
            }
        };
        self.heap.push(HeapKey { at, seq, idx });
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let k = self.heap.pop()?;
        let event = self.slab[k.idx as usize]
            .take()
            .expect("heap key pointed at an empty slab slot");
        self.free.push(k.idx);
        Some((k.at, k.seq, event))
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|k| k.at)
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
    }
}

/// Backend selection (and sizing) for an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Binary heap with `capacity` slots pre-allocated.
    Heap {
        /// Pending-event slots to pre-allocate.
        capacity: usize,
    },
    /// Timing wheel of `buckets` buckets, each `bucket_width` wide, plus an
    /// overflow heap for events beyond the window.
    Bucketed {
        /// Width of one bucket (rounded up to a power-of-two nanosecond
        /// count so bucket indexing is a shift, not a division). Aim for
        /// roughly one pending event per bucket: `1 / event_rate`.
        bucket_width: SimDuration,
        /// Number of wheel buckets; the window covers
        /// `buckets * bucket_width` of simulated time. Aim for a window a
        /// few times the typical scheduling delay.
        buckets: usize,
    },
}

impl QueueBackend {
    /// The default heap backend with no pre-allocation.
    pub const DEFAULT_HEAP: QueueBackend = QueueBackend::Heap { capacity: 0 };
}

/// Calendar-queue state: a ring of unsorted buckets over a sliding window
/// `[win_start, win_start + buckets)` of absolute bucket ids, plus a heap
/// for everything beyond (or, defensively, before) the window.
struct BucketWheel<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// log2 of the bucket width in nanoseconds.
    width_shift: u32,
    /// Absolute bucket id of the window start.
    win_start: u64,
    /// Absolute bucket id the next pop scans from; only ever moves forward
    /// within the window except when a push lands behind it. `Cell` so
    /// `peek` can advance it past empty buckets without `&mut`.
    cursor: Cell<u64>,
    /// Events currently in the wheel (not the overflow).
    in_wheel: usize,
    overflow: BinaryHeap<Scheduled<E>>,
}

impl<E> BucketWheel<E> {
    fn new(bucket_width: SimDuration, buckets: usize) -> Self {
        let width = bucket_width.as_nanos().max(1).next_power_of_two();
        BucketWheel {
            buckets: (0..buckets.max(1)).map(|_| Vec::new()).collect(),
            width_shift: width.trailing_zeros(),
            win_start: 0,
            cursor: Cell::new(0),
            in_wheel: 0,
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn bucket_id(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.width_shift
    }

    #[inline]
    fn push(&mut self, s: Scheduled<E>) {
        let bid = self.bucket_id(s.at);
        let n = self.buckets.len() as u64;
        if bid >= self.win_start && bid < self.win_start + n {
            self.buckets[(bid % n) as usize].push(s);
            self.in_wheel += 1;
            if bid < self.cursor.get() {
                self.cursor.set(bid);
            }
        } else {
            // Beyond the window (or, defensively, before it — possible only
            // through direct queue use, never through the engine): the heap
            // accepts any instant and `pop` compares against the wheel.
            self.overflow.push(s);
        }
    }

    /// Location of the minimum wheel event: `(ring index, item index)`.
    /// Advances the cursor past empty buckets as a side effect (safe: the
    /// skipped buckets stay empty until a push resets the cursor).
    fn wheel_min(&self) -> Option<(usize, usize)> {
        if self.in_wheel == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        let mut cur = self.cursor.get();
        loop {
            debug_assert!(cur < self.win_start + n, "wheel count out of sync");
            let ring = (cur % n) as usize;
            let b = &self.buckets[ring];
            if let Some(min_idx) = Self::scan_min(b) {
                self.cursor.set(cur);
                return Some((ring, min_idx));
            }
            cur += 1;
        }
    }

    /// Index of the `(time, seq)`-minimal event in one (unsorted) bucket.
    #[inline]
    fn scan_min(bucket: &[Scheduled<E>]) -> Option<usize> {
        let mut it = bucket.iter().enumerate();
        let (mut best_i, first) = it.next()?;
        let mut best_key = first.key();
        for (i, s) in it {
            if s.key() < best_key {
                best_key = s.key();
                best_i = i;
            }
        }
        Some(best_i)
    }

    /// Re-anchors the window at the overflow's earliest event and migrates
    /// every overflow event that now falls inside it. Called when the wheel
    /// has drained but events remain.
    fn refill(&mut self) {
        let Some(front) = self.overflow.peek() else {
            return;
        };
        let n = self.buckets.len() as u64;
        self.win_start = self.bucket_id(front.at);
        self.cursor.set(self.win_start);
        while let Some(s) = self.overflow.peek() {
            if self.bucket_id(s.at) >= self.win_start + n {
                break;
            }
            let s = self.overflow.pop().expect("peeked event vanished");
            let ring = (self.bucket_id(s.at) % n) as usize;
            self.buckets[ring].push(s);
            self.in_wheel += 1;
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled<E>> {
        match self.pop_before(None) {
            Popped::Event(s) => Some(s),
            Popped::AtOrAfter(_) | Popped::Empty => None,
        }
    }

    /// Single-scan pop-with-horizon: locates the minimum once and either
    /// removes it (strictly before `limit`) or reports its instant without
    /// disturbing it. The engine's run loop calls this once per iteration;
    /// a separate peek-then-pop would scan the minimum's bucket twice.
    #[inline]
    fn pop_before(&mut self, limit: Option<SimTime>) -> Popped<Scheduled<E>> {
        if self.in_wheel == 0 && !self.overflow.is_empty() {
            self.refill();
        }
        let wheel = self.wheel_min();
        let take_overflow = match (&wheel, self.overflow.peek()) {
            (None, None) => return Popped::Empty,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (&Some((ring, idx)), Some(o)) => o.key() < self.buckets[ring][idx].key(),
        };
        let at = if take_overflow {
            self.overflow
                .peek()
                .expect("overflow candidate vanished")
                .at
        } else {
            let (ring, idx) = wheel.expect("wheel candidate vanished");
            self.buckets[ring][idx].at
        };
        if limit.is_some_and(|h| at >= h) {
            return Popped::AtOrAfter(at);
        }
        if take_overflow {
            Popped::Event(self.overflow.pop().expect("peeked event vanished"))
        } else {
            let (ring, idx) = wheel.expect("wheel candidate vanished");
            self.in_wheel -= 1;
            Popped::Event(self.buckets[ring].swap_remove(idx))
        }
    }

    fn peek_key(&self) -> Option<(SimTime, u64)> {
        let wheel = self
            .wheel_min()
            .map(|(ring, idx)| self.buckets[ring][idx].key());
        let over = self.overflow.peek().map(Scheduled::key);
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.in_wheel = 0;
        self.overflow.clear();
    }
}

/// The two interchangeable stores behind an [`EventQueue`].
enum Store<E> {
    Heap(SlabHeap<E>),
    Bucketed(BucketWheel<E>),
}

/// Result of a [`EventQueue::pop_before`] call: the popped event, or why
/// nothing was popped.
pub(crate) enum Popped<E> {
    /// The earliest event, removed from the queue.
    Event(E),
    /// The earliest pending event fires at this instant, which is at or
    /// after the requested limit; it stays queued.
    AtOrAfter(SimTime),
    /// No events are pending.
    Empty,
}

/// A future-event list ordered by `(time, insertion sequence)`.
pub struct EventQueue<E> {
    store: Store<E>,
    next_seq: u64,
    len: usize,
    peak_len: usize,
    /// Sequence numbers cancelled via [`EventQueue::cancel`] but not yet
    /// swept out of the backend. Lazy deletion: the pop paths discard any
    /// popped event whose seq is in this set. The sweep lives here, above
    /// both backends, so cancellation cannot introduce backend divergence.
    cancelled: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty heap-backed queue.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::DEFAULT_HEAP)
    }

    /// Creates an empty heap-backed queue with room for `capacity` pending
    /// events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_backend(QueueBackend::Heap { capacity })
    }

    /// Creates an empty queue with the given backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let store = match backend {
            QueueBackend::Heap { capacity } => Store::Heap(SlabHeap::with_capacity(capacity)),
            QueueBackend::Bucketed {
                bucket_width,
                buckets,
            } => Store::Bucketed(BucketWheel::new(bucket_width, buckets)),
        };
        EventQueue {
            store,
            next_seq: 0,
            len: 0,
            peak_len: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Enqueues `event` to fire at `at`. Events with equal instants pop in
    /// the order they were pushed. The returned handle cancels the event via
    /// [`EventQueue::cancel`]; callers that never cancel may ignore it.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.store {
            Store::Heap(h) => h.push(at, seq, event),
            Store::Bucketed(w) => w.push(Scheduled { at, seq, event }),
        }
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        TimerId(seq)
    }

    /// Cancels a pending event by handle. Returns true when the event was
    /// marked for removal, false when the handle was already cancelled or
    /// never issued by this queue. The event is discarded lazily on its way
    /// out of the backend, so [`EventQueue::len`] keeps counting it until a
    /// pop sweeps past its instant.
    ///
    /// Cancelling an event that already popped is the caller's bug this
    /// queue cannot detect (sequence numbers are never reused, so no *other*
    /// event is ever affected); the stale mark lingers until
    /// [`EventQueue::clear`].
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let popped = match &mut self.store {
                Store::Heap(h) => h.pop(),
                Store::Bucketed(w) => w.pop().map(|s| (s.at, s.seq, s.event)),
            };
            let (at, seq, event) = popped?;
            self.len -= 1;
            if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                continue;
            }
            return Some((at, event));
        }
    }

    /// Removes and returns the earliest pending event if it fires strictly
    /// before `limit` (`None` = no limit). A single backend scan serves
    /// both the horizon check and the removal, which matters for the
    /// bucketed backend where locating the minimum rescans a bucket.
    ///
    /// A cancelled event at or after `limit` may still be reported through
    /// [`Popped::AtOrAfter`] (it is swept only when a pop actually reaches
    /// it); both backends share this behaviour, and the engine only uses the
    /// reported instant to park at its horizon.
    #[inline]
    pub(crate) fn pop_before(&mut self, limit: Option<SimTime>) -> Popped<(SimTime, E)> {
        loop {
            let popped = match &mut self.store {
                Store::Heap(h) => match h.peek_time() {
                    None => Popped::Empty,
                    Some(at) if limit.is_some_and(|l| at >= l) => Popped::AtOrAfter(at),
                    Some(_) => {
                        let (at, seq, event) = h.pop().expect("peeked event vanished");
                        Popped::Event((at, seq, event))
                    }
                },
                Store::Bucketed(w) => match w.pop_before(limit) {
                    Popped::Event(s) => Popped::Event((s.at, s.seq, s.event)),
                    Popped::AtOrAfter(at) => Popped::AtOrAfter(at),
                    Popped::Empty => Popped::Empty,
                },
            };
            match popped {
                Popped::Event((at, seq, event)) => {
                    self.len -= 1;
                    if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                        continue;
                    }
                    return Popped::Event((at, event));
                }
                Popped::AtOrAfter(at) => return Popped::AtOrAfter(at),
                Popped::Empty => return Popped::Empty,
            }
        }
    }

    /// The instant of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.store {
            Store::Heap(h) => h.peek_time(),
            Store::Bucketed(w) => w.peek_key().map(|(at, _)| at),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across a clear).
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Heap(h) => h.clear(),
            Store::Bucketed(w) => w.clear(),
        }
        self.len = 0;
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends, so every contract test runs against each.
    fn backends() -> Vec<(&'static str, EventQueue<&'static str>)> {
        vec![
            ("heap", EventQueue::new()),
            (
                "bucketed",
                EventQueue::with_backend(QueueBackend::Bucketed {
                    bucket_width: SimDuration::from_nanos(1 << 28), // ~0.27 s
                    buckets: 16,
                }),
            ),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for (name, mut q) in backends() {
            q.push(SimTime::from_secs(3), "c");
            q.push(SimTime::from_secs(1), "a");
            q.push(SimTime::from_secs(2), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "backend {name}");
        }
    }

    #[test]
    fn ties_break_fifo() {
        for backend in [
            QueueBackend::DEFAULT_HEAP,
            QueueBackend::Bucketed {
                bucket_width: SimDuration::from_secs(1),
                buckets: 8,
            },
        ] {
            let mut q = EventQueue::with_backend(backend);
            let t = SimTime::from_secs(5);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn interleaved_ties_and_times() {
        for (name, mut q) in backends() {
            q.push(SimTime::from_secs(2), "t2-first");
            q.push(SimTime::from_secs(1), "t1");
            q.push(SimTime::from_secs(2), "t2-second");
            assert_eq!(q.pop().unwrap().1, "t1", "backend {name}");
            assert_eq!(q.pop().unwrap().1, "t2-first", "backend {name}");
            assert_eq!(q.pop().unwrap().1, "t2-second", "backend {name}");
            assert!(q.pop().is_none(), "backend {name}");
        }
    }

    #[test]
    fn peek_time_sees_earliest() {
        for (name, mut q) in backends() {
            assert_eq!(q.peek_time(), None, "backend {name}");
            q.push(SimTime::from_secs(9), "a");
            q.push(SimTime::from_secs(4), "b");
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)), "backend {name}");
            assert_eq!(q.len(), 2, "backend {name}");
        }
    }

    #[test]
    fn clear_empties_but_keeps_working() {
        for (name, mut q) in backends() {
            q.push(SimTime::from_secs(1), "a");
            q.clear();
            assert!(q.is_empty(), "backend {name}");
            q.push(SimTime::from_secs(2), "b");
            assert_eq!(
                q.pop(),
                Some((SimTime::from_secs(2), "b")),
                "backend {name}"
            );
        }
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for s in 0..10u64 {
            q.push(SimTime::from_secs(s), s);
        }
        for _ in 0..4 {
            q.pop();
        }
        q.push(SimTime::from_secs(99), 99);
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn bucketed_window_rotation_preserves_order() {
        // Events far beyond the window live in the overflow until the wheel
        // drains, then migrate; order must survive several rotations.
        let mut q = EventQueue::with_backend(QueueBackend::Bucketed {
            bucket_width: SimDuration::from_nanos(1024),
            buckets: 4,
        });
        let times: Vec<u64> = (0..200).map(|i| (i * 7919) % 100_000).collect();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i);
        }
        let mut sorted: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        sorted.sort();
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.as_nanos(), e))
            .collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn cancel_skips_events_on_both_backends() {
        for (name, mut q) in backends() {
            let _a = q.push(SimTime::from_secs(1), "a");
            let b = q.push(SimTime::from_secs(2), "b");
            let _c = q.push(SimTime::from_secs(3), "c");
            assert!(q.cancel(b), "backend {name}");
            assert!(!q.cancel(b), "backend {name}: double cancel");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "c"], "backend {name}");
        }
    }

    #[test]
    fn cancel_of_head_event_is_swept_before_later_events() {
        for (name, mut q) in backends() {
            let head = q.push(SimTime::from_secs(1), "head");
            q.push(SimTime::from_secs(1), "tail");
            assert!(q.cancel(head), "backend {name}");
            // len counts the cancelled event until a pop sweeps it.
            assert_eq!(q.len(), 2, "backend {name}");
            assert_eq!(q.pop().unwrap().1, "tail", "backend {name}");
            assert!(q.pop().is_none(), "backend {name}");
            assert_eq!(q.len(), 0, "backend {name}");
        }
    }

    #[test]
    fn cancel_all_pending_drains_to_empty() {
        for (name, mut q) in backends() {
            let ids: Vec<TimerId> = (0..5u64)
                .map(|s| q.push(SimTime::from_secs(s), "x"))
                .collect();
            for id in ids {
                assert!(q.cancel(id), "backend {name}");
            }
            assert!(q.pop().is_none(), "backend {name}");
            assert!(q.is_empty(), "backend {name}");
        }
    }

    #[test]
    fn cancel_rejects_unissued_ids_and_clear_forgets_marks() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        assert!(!q.cancel(TimerId(999)), "never-issued id");
        assert!(q.cancel(a));
        q.clear();
        // After clear, old marks are forgotten and fresh pushes pop
        // normally even though their seqs continue past the cleared ones.
        let b = q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        // Cancelling an already-popped handle is accepted (the queue cannot
        // detect it) and harmless: the mark matches no future seq.
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
    }

    #[test]
    fn bucketed_interleaved_push_pop_matches_heap() {
        // Deterministic pseudo-random interleaving of pushes and pops (with
        // monotone non-decreasing push times, as the engine guarantees)
        // produces identical sequences from both backends.
        let mut heap = EventQueue::new();
        let mut wheel = EventQueue::with_backend(QueueBackend::Bucketed {
            bucket_width: SimDuration::from_nanos(4096),
            buckets: 8,
        });
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..2000u64 {
            if rng() % 3 != 0 {
                let at = now + rng() % 100_000;
                heap.push(SimTime::from_nanos(at), i);
                wheel.push(SimTime::from_nanos(at), i);
            } else {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
