//! The pending-event set: a future-event list keyed by `(time, sequence)`.
//!
//! The sequence number breaks ties between events scheduled for the same
//! instant in FIFO order, which keeps runs deterministic regardless of how
//! the backing store resolves equal keys internally.
//!
//! Two interchangeable backends implement the same contract. Both operate
//! on compact 24-byte `(time, seq, slot)` keys over a shared payload slab,
//! so ordering work never moves the (much larger) events themselves:
//!
//! * [`QueueBackend::Heap`] — a binary heap of keys; `O(log n)` push/pop,
//!   no tuning knobs, the default.
//! * [`QueueBackend::TimerWheel`] — a hierarchical timer wheel: six levels
//!   of 64 slots each, every level 64× coarser than the one below, with a
//!   `u64` occupancy bitmap per level so empty slots are skipped with one
//!   `trailing_zeros`. Near-future events (the vast majority in a
//!   message-passing simulation: deliveries a few hop latencies out) land
//!   in the finest level and are placed in `O(1)`; far-future timers
//!   (TTL-scale refreshes, interest checks) sit in a coarse level and
//!   cascade toward level zero as the cursor approaches — `O(1)` amortized
//!   per event per level. A tiny `near` heap holds the events of the slot
//!   the cursor is draining, so pops stay exact `(time, seq)` order; an
//!   overflow heap takes the (practically unreachable) instants beyond the
//!   top level's span.
//!
//! Both backends pop in exactly `(time, seq)` order — the equivalence is
//! enforced by property tests here and by end-to-end report-identity tests
//! in the workspace `tests/` tree.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// A handle to one queued event, returned by [`EventQueue::push`] and
/// consumed by [`EventQueue::cancel`]. Wraps the event's unique insertion
/// sequence number, so handles stay valid (and unambiguous) across any
/// number of pushes and pops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// Rebuilds a handle from its raw sequence number. Intended for tests
    /// and bookkeeping layers that fabricate placeholder handles; a raw
    /// value not obtained from [`TimerId::raw`] on the same queue will
    /// cancel nothing (or the wrong event), exactly as misusing the handle
    /// itself would.
    pub fn from_raw(seq: u64) -> Self {
        TimerId(seq)
    }

    /// The handle's raw sequence number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A compact queue entry: the full ordering key plus the slab slot holding
/// the payload. Heap sifts and wheel cascades move these 24 bytes, never
/// the event itself.
struct Key {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl Key {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so a BinaryHeap (a max-heap) pops the earliest event.
        other.key().cmp(&self.key())
    }
}

/// The payload store shared by both backends: a slab with an embedded free
/// list. Slots are recycled, so the slab's footprint is the queue's
/// high-water mark, not its push count.
struct Slab<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Slab<E> {
    fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    #[inline]
    fn insert(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(event);
                i
            }
            None => {
                let i = self.slots.len();
                assert!(i <= u32::MAX as usize, "pending-event slab overflow");
                self.slots.push(Some(event));
                i as u32
            }
        }
    }

    #[inline]
    fn remove(&mut self, idx: u32) -> E {
        let event = self.slots[idx as usize]
            .take()
            .expect("queue key pointed at an empty slab slot");
        self.free.push(idx);
        event
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// Backend selection (and sizing) for an [`EventQueue`].
///
/// Marked `#[non_exhaustive]`: match with a wildcard arm so new backends
/// can be added without a breaking change. The formerly available
/// `Bucketed` calendar queue was removed after benchmarks showed it slower
/// than the heap in every cell; [`QueueBackend::TimerWheel`] replaces it.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Binary heap with `capacity` slots pre-allocated.
    Heap {
        /// Pending-event slots to pre-allocate.
        capacity: usize,
    },
    /// Hierarchical timer wheel (six levels × 64 slots, bitmap-indexed).
    TimerWheel {
        /// Width of one finest-level wheel slot (rounded up to a
        /// power-of-two nanosecond count so slot indexing is a shift, not
        /// a division). Aim for roughly the event inter-arrival time, so
        /// the slot being drained holds about one event; the hierarchy
        /// covers `64^6` ticks above it, so no window knob is needed.
        tick: SimDuration,
    },
}

impl QueueBackend {
    /// The default heap backend with no pre-allocation.
    pub const DEFAULT_HEAP: QueueBackend = QueueBackend::Heap { capacity: 0 };
}

/// Slots per wheel level; levels are 64× coarser as they go up.
const WHEEL_BITS: u32 = 6;
/// Slots per wheel level (64).
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Wheel levels. Six levels cover `64^6 ≈ 6.9·10^10` ticks beyond the
/// cursor; with a millisecond tick that is two years of simulated time, so
/// the overflow heap is a correctness backstop, not a working store.
const WHEEL_LEVELS: usize = 6;

/// One wheel level: 64 unsorted slots plus an occupancy bitmap, so the
/// next occupied slot is found with a mask and a `trailing_zeros` instead
/// of a scan.
struct WheelLevel {
    occupied: u64,
    slots: [Vec<Key>; WHEEL_SLOTS],
}

impl WheelLevel {
    fn new() -> Self {
        WheelLevel {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// Hierarchical timer wheel state.
///
/// `cursor` is the absolute finest-level slot index the wheel has drained
/// up to: every event in a slot at or before the cursor lives in `near`
/// (a tiny key heap), every event after it in the level whose span first
/// covers its distance from the cursor, and everything beyond the top
/// level in `overflow`. Invariant: all `near` events precede all wheel
/// events in time, so the head of `near` is the wheel-or-near minimum and
/// only the `overflow` head can compete with it.
struct TimerWheel {
    /// log2 of the finest-level slot width in nanoseconds.
    shift: u32,
    /// Absolute finest-level slot index of the drain cursor.
    cursor: u64,
    /// Events at or before the cursor slot, kept sorted descending by
    /// `(time, seq)` so the minimum pops from the back in `O(1)` and an
    /// insert is a binary search plus a short contiguous shift — faster
    /// than heap sifts at the ≤ 50-key populations this simulator runs.
    near: Vec<Key>,
    /// Events currently placed in the levels (excludes near and overflow).
    in_wheel: usize,
    /// Events beyond the top level's span from the cursor.
    overflow: BinaryHeap<Key>,
    levels: Box<[WheelLevel; WHEEL_LEVELS]>,
}

impl TimerWheel {
    fn new(tick: SimDuration) -> Self {
        let width = tick.as_nanos().max(1).next_power_of_two();
        TimerWheel {
            shift: width.trailing_zeros(),
            cursor: 0,
            near: Vec::new(),
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            levels: Box::new(std::array::from_fn(|_| WheelLevel::new())),
        }
    }

    /// The absolute finest-level slot index covering `at`.
    #[inline]
    fn slot0(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.shift
    }

    /// The level whose span covers a slot `s` relative to the cursor:
    /// the position of the highest differing bit, in 6-bit digits.
    /// Requires `s > cursor`; returns `WHEEL_LEVELS` for overflow.
    #[inline]
    fn level_of(&self, s: u64) -> usize {
        let diff = s ^ self.cursor;
        ((63 - diff.leading_zeros()) / WHEEL_BITS) as usize
    }

    /// Inserts into `near`, keeping it sorted descending by `(time, seq)`.
    #[inline]
    fn near_insert(&mut self, key: Key) {
        let k = key.key();
        let idx = self.near.partition_point(|e| e.key() > k);
        self.near.insert(idx, key);
    }

    #[inline]
    fn push(&mut self, key: Key) {
        let s = self.slot0(key.at);
        if s <= self.cursor {
            // The cursor slot (or earlier — a same-instant cascade or a
            // direct push into the past) drains through the near list.
            self.near_insert(key);
            return;
        }
        let level = self.level_of(s);
        if level >= WHEEL_LEVELS {
            self.overflow.push(key);
            return;
        }
        // All bits above the level match the cursor's, and the level's own
        // digit exceeds the cursor's, so the ring index never wraps into
        // already-drained territory.
        let ring = ((s >> (WHEEL_BITS * level as u32)) & 63) as usize;
        let lv = &mut self.levels[level];
        lv.slots[ring].push(key);
        lv.occupied |= 1 << ring;
        self.in_wheel += 1;
    }

    /// Ensures `near` holds the earliest wheel events, advancing the
    /// cursor (and cascading coarse slots) as needed. Returns false when
    /// the wheel and `near` are both empty; `overflow` is consulted only
    /// to re-anchor a fully drained wheel.
    fn fill_near(&mut self) -> bool {
        loop {
            if !self.near.is_empty() {
                return true;
            }
            if self.in_wheel == 0 {
                // Wheel drained: re-anchor at the overflow's earliest
                // event and migrate everything that now fits the span.
                if self.overflow.is_empty() {
                    return false;
                }
                let front = self.overflow.peek().expect("peeked event vanished");
                self.cursor = self.slot0(front.at);
                while let Some(f) = self.overflow.peek() {
                    let s = self.slot0(f.at);
                    if s > self.cursor && self.level_of(s) >= WHEEL_LEVELS {
                        break;
                    }
                    let key = self.overflow.pop().expect("peeked event vanished");
                    self.push(key);
                }
                continue;
            }
            // Find the first occupied slot, finest level upward. A coarse
            // level's events all start after the finer levels' current
            // window, so the first hit is the earliest.
            let mut found = None;
            for level in 0..WHEEL_LEVELS {
                let cur_ring = ((self.cursor >> (WHEEL_BITS * level as u32)) & 63) as u32;
                // The cursor's own slot is already drained (level 0) or
                // cascaded below (coarser levels): search strictly beyond.
                let mask = if cur_ring == 63 {
                    0
                } else {
                    !0u64 << (cur_ring + 1)
                };
                let ready = self.levels[level].occupied & mask;
                if ready != 0 {
                    found = Some((level, ready.trailing_zeros() as usize));
                    break;
                }
            }
            let Some((level, ring)) = found else {
                debug_assert!(false, "wheel count out of sync with occupancy");
                return false;
            };
            // Advance the cursor to the start of the found slot: replace
            // the level's digit with `ring`, zero everything below.
            let w = WHEEL_BITS * level as u32;
            self.cursor = (((self.cursor >> (w + WHEEL_BITS)) << WHEEL_BITS) | ring as u64) << w;
            self.levels[level].occupied &= !(1u64 << ring);
            if level == 0 {
                // Drain the finest slot into `near` in place, so the slot
                // keeps its capacity for the next lap. `near` is empty
                // here (loop condition), so one unstable sort replaces
                // per-key ordered inserts. Key's `Ord` is reversed, so the
                // ascending sort yields the descending-by-time layout.
                let lv = &mut self.levels[0];
                let slot = &mut lv.slots[ring];
                self.in_wheel -= slot.len();
                self.near.append(slot);
                self.near.sort_unstable();
            } else {
                // Cascade a coarse slot down: re-place every key against
                // the advanced cursor (finer level, or `near` when the key
                // falls in the cursor slot itself).
                let keys = std::mem::take(&mut self.levels[level].slots[ring]);
                self.in_wheel -= keys.len();
                for k in keys {
                    self.push(k);
                }
            }
        }
    }

    /// Single-scan pop-with-horizon: locates the minimum once and either
    /// removes it (strictly before `limit`) or reports its instant without
    /// disturbing it.
    #[inline]
    fn pop_before(&mut self, limit: Option<SimTime>) -> Popped<Key> {
        if self.near.is_empty() {
            self.fill_near();
        }
        let take_overflow = match (self.near.last(), self.overflow.peek()) {
            (None, None) => return Popped::Empty,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            // An early overflow event can undercut the wheel: it was
            // pushed against an older cursor and is migrated lazily.
            (Some(n), Some(o)) => o.key() < n.key(),
        };
        let at = if take_overflow {
            self.overflow
                .peek()
                .expect("overflow candidate vanished")
                .at
        } else {
            self.near.last().expect("near candidate vanished").at
        };
        if limit.is_some_and(|h| at >= h) {
            return Popped::AtOrAfter(at);
        }
        let key = if take_overflow {
            self.overflow.pop()
        } else {
            self.near.pop()
        };
        Popped::Event(key.expect("peeked event vanished"))
    }

    /// The `(time, seq)` of the earliest pending event without disturbing
    /// the wheel (no cursor movement, no cascades): the near heap's head,
    /// else a bitmap walk to the first occupied slot and an unsorted scan
    /// of that one slot, always compared against the overflow head.
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        let mut best = self.near.last().map(Key::key);
        if best.is_none() && self.in_wheel > 0 {
            for level in 0..WHEEL_LEVELS {
                let cur_ring = ((self.cursor >> (WHEEL_BITS * level as u32)) & 63) as u32;
                let mask = if cur_ring == 63 {
                    0
                } else {
                    !0u64 << (cur_ring + 1)
                };
                let ready = self.levels[level].occupied & mask;
                if ready != 0 {
                    let ring = ready.trailing_zeros() as usize;
                    best = self.levels[level].slots[ring].iter().map(Key::key).min();
                    break;
                }
            }
        }
        let over = self.overflow.peek().map(Key::key);
        match (best, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    fn clear(&mut self) {
        for lv in self.levels.iter_mut() {
            lv.occupied = 0;
            for slot in &mut lv.slots {
                slot.clear();
            }
        }
        self.near.clear();
        self.overflow.clear();
        self.in_wheel = 0;
        // The cursor stays: clearing must not rewind time, so fresh
        // pushes keep landing relative to where the simulation left off.
    }
}

/// The two interchangeable key stores behind an [`EventQueue`].
enum Store {
    Heap(BinaryHeap<Key>),
    Wheel(TimerWheel),
}

impl Store {
    #[inline]
    fn push(&mut self, key: Key) {
        match self {
            Store::Heap(h) => h.push(key),
            Store::Wheel(w) => w.push(key),
        }
    }

    #[inline]
    fn pop_before(&mut self, limit: Option<SimTime>) -> Popped<Key> {
        match self {
            Store::Heap(h) => match h.peek() {
                None => Popped::Empty,
                Some(k) if limit.is_some_and(|l| k.at >= l) => Popped::AtOrAfter(k.at),
                Some(_) => Popped::Event(h.pop().expect("peeked event vanished")),
            },
            Store::Wheel(w) => w.pop_before(limit),
        }
    }

    fn peek_key(&self) -> Option<(SimTime, u64)> {
        match self {
            Store::Heap(h) => h.peek().map(Key::key),
            Store::Wheel(w) => w.peek_key(),
        }
    }

    fn clear(&mut self) {
        match self {
            Store::Heap(h) => h.clear(),
            Store::Wheel(w) => w.clear(),
        }
    }
}

/// Result of a [`EventQueue::pop_before`] call: the popped event, or why
/// nothing was popped.
pub(crate) enum Popped<E> {
    /// The earliest event, removed from the queue.
    Event(E),
    /// The earliest pending event fires at this instant, which is at or
    /// after the requested limit; it stays queued.
    AtOrAfter(SimTime),
    /// No events are pending.
    Empty,
}

/// A future-event list ordered by `(time, insertion sequence)`.
pub struct EventQueue<E> {
    store: Store,
    slab: Slab<E>,
    next_seq: u64,
    len: usize,
    peak_len: usize,
    /// Sequence numbers cancelled via [`EventQueue::cancel`] but not yet
    /// swept out of the backend. Lazy deletion: the pop paths discard any
    /// popped event whose seq is in this set. The sweep lives here, above
    /// both backends, so cancellation cannot introduce backend divergence.
    cancelled: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty heap-backed queue.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::DEFAULT_HEAP)
    }

    /// Creates an empty heap-backed queue with room for `capacity` pending
    /// events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_backend(QueueBackend::Heap { capacity })
    }

    /// Creates an empty queue with the given backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let (store, capacity) = match backend {
            QueueBackend::Heap { capacity } => {
                (Store::Heap(BinaryHeap::with_capacity(capacity)), capacity)
            }
            QueueBackend::TimerWheel { tick } => (Store::Wheel(TimerWheel::new(tick)), 0),
        };
        EventQueue {
            store,
            slab: Slab::with_capacity(capacity),
            next_seq: 0,
            len: 0,
            peak_len: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Enqueues `event` to fire at `at`. Events with equal instants pop in
    /// the order they were pushed. The returned handle cancels the event via
    /// [`EventQueue::cancel`]; callers that never cancel may ignore it.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.slab.insert(event);
        self.store.push(Key { at, seq, idx });
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        TimerId(seq)
    }

    /// Cancels a pending event by handle. Returns true when the event was
    /// marked for removal, false when the handle was already cancelled or
    /// never issued by this queue. The event is discarded lazily on its way
    /// out of the backend, so [`EventQueue::len`] keeps counting it until a
    /// pop sweeps past its instant.
    ///
    /// Cancelling an event that already popped is the caller's bug this
    /// queue cannot detect (sequence numbers are never reused, so no *other*
    /// event is ever affected); the stale mark lingers until
    /// [`EventQueue::clear`].
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self.pop_before(None) {
            Popped::Event(e) => Some(e),
            Popped::AtOrAfter(_) | Popped::Empty => None,
        }
    }

    /// Removes and returns the earliest pending event if it fires strictly
    /// before `limit` (`None` = no limit). A single backend scan serves
    /// both the horizon check and the removal, which matters for the wheel
    /// backend where locating the minimum can advance the cursor.
    ///
    /// A cancelled event at or after `limit` may still be reported through
    /// [`Popped::AtOrAfter`] (it is swept only when a pop actually reaches
    /// it); both backends share this behaviour, and the engine only uses the
    /// reported instant to park at its horizon.
    #[inline]
    pub(crate) fn pop_before(&mut self, limit: Option<SimTime>) -> Popped<(SimTime, E)> {
        loop {
            match self.store.pop_before(limit) {
                Popped::Event(k) => {
                    let event = self.slab.remove(k.idx);
                    self.len -= 1;
                    if !self.cancelled.is_empty() && self.cancelled.remove(&k.seq) {
                        continue;
                    }
                    return Popped::Event((k.at, event));
                }
                Popped::AtOrAfter(at) => return Popped::AtOrAfter(at),
                Popped::Empty => return Popped::Empty,
            }
        }
    }

    /// The instant of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.store.peek_key().map(|(at, _)| at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across a clear).
    pub fn clear(&mut self) {
        self.store.clear();
        self.slab.clear();
        self.len = 0;
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends, so every contract test runs against each.
    fn backends() -> Vec<(&'static str, EventQueue<&'static str>)> {
        vec![
            ("heap", EventQueue::new()),
            (
                "timer-wheel",
                EventQueue::with_backend(QueueBackend::TimerWheel {
                    tick: SimDuration::from_nanos(1 << 20), // ~1 ms
                }),
            ),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for (name, mut q) in backends() {
            q.push(SimTime::from_secs(3), "c");
            q.push(SimTime::from_secs(1), "a");
            q.push(SimTime::from_secs(2), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "backend {name}");
        }
    }

    #[test]
    fn ties_break_fifo() {
        for backend in [
            QueueBackend::DEFAULT_HEAP,
            QueueBackend::TimerWheel {
                tick: SimDuration::from_secs(1),
            },
        ] {
            let mut q = EventQueue::with_backend(backend);
            let t = SimTime::from_secs(5);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn interleaved_ties_and_times() {
        for (name, mut q) in backends() {
            q.push(SimTime::from_secs(2), "t2-first");
            q.push(SimTime::from_secs(1), "t1");
            q.push(SimTime::from_secs(2), "t2-second");
            assert_eq!(q.pop().unwrap().1, "t1", "backend {name}");
            assert_eq!(q.pop().unwrap().1, "t2-first", "backend {name}");
            assert_eq!(q.pop().unwrap().1, "t2-second", "backend {name}");
            assert!(q.pop().is_none(), "backend {name}");
        }
    }

    #[test]
    fn peek_time_sees_earliest() {
        for (name, mut q) in backends() {
            assert_eq!(q.peek_time(), None, "backend {name}");
            q.push(SimTime::from_secs(9), "a");
            q.push(SimTime::from_secs(4), "b");
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)), "backend {name}");
            assert_eq!(q.len(), 2, "backend {name}");
        }
    }

    #[test]
    fn clear_empties_but_keeps_working() {
        for (name, mut q) in backends() {
            q.push(SimTime::from_secs(1), "a");
            q.clear();
            assert!(q.is_empty(), "backend {name}");
            q.push(SimTime::from_secs(2), "b");
            assert_eq!(
                q.pop(),
                Some((SimTime::from_secs(2), "b")),
                "backend {name}"
            );
        }
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for s in 0..10u64 {
            q.push(SimTime::from_secs(s), s);
        }
        for _ in 0..4 {
            q.pop();
        }
        q.push(SimTime::from_secs(99), 99);
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn wheel_cascades_preserve_order_across_levels() {
        // A 1-nanosecond tick puts these instants several levels up the
        // hierarchy; they must cascade down and pop in exact order.
        let mut q = EventQueue::with_backend(QueueBackend::TimerWheel {
            tick: SimDuration::from_nanos(1),
        });
        let times: Vec<u64> = (0..500).map(|i| (i * 7919) % 10_000_000).collect();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i);
        }
        let mut sorted: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        sorted.sort();
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.as_nanos(), e))
            .collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn wheel_overflow_reanchors_and_preserves_order() {
        // Instants beyond the top level's span (64^6 ticks at a 1 ns tick
        // ≈ 68.7 s) land in the overflow heap; draining the wheel must
        // re-anchor there and keep exact order, including an early
        // overflow event undercutting later in-wheel pushes.
        let mut q = EventQueue::with_backend(QueueBackend::TimerWheel {
            tick: SimDuration::from_nanos(1),
        });
        let far = SimTime::from_secs(100); // overflow relative to cursor 0
        q.push(far, "far");
        q.push(SimTime::from_secs(1), "near");
        // After popping "near" the cursor sits at ~1 s; "farther" is still
        // beyond the span (joins "far" in overflow) while "soon" lands in
        // the wheel and must undercut both at pop time.
        assert_eq!(q.pop().unwrap().1, "near");
        q.push(SimTime::from_secs(101), "farther");
        q.push(SimTime::from_secs(2), "soon");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["soon", "far", "farther"]);
    }

    #[test]
    fn cancel_skips_events_on_both_backends() {
        for (name, mut q) in backends() {
            let _a = q.push(SimTime::from_secs(1), "a");
            let b = q.push(SimTime::from_secs(2), "b");
            let _c = q.push(SimTime::from_secs(3), "c");
            assert!(q.cancel(b), "backend {name}");
            assert!(!q.cancel(b), "backend {name}: double cancel");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "c"], "backend {name}");
        }
    }

    #[test]
    fn cancel_of_head_event_is_swept_before_later_events() {
        for (name, mut q) in backends() {
            let head = q.push(SimTime::from_secs(1), "head");
            q.push(SimTime::from_secs(1), "tail");
            assert!(q.cancel(head), "backend {name}");
            // len counts the cancelled event until a pop sweeps it.
            assert_eq!(q.len(), 2, "backend {name}");
            assert_eq!(q.pop().unwrap().1, "tail", "backend {name}");
            assert!(q.pop().is_none(), "backend {name}");
            assert_eq!(q.len(), 0, "backend {name}");
        }
    }

    #[test]
    fn cancel_all_pending_drains_to_empty() {
        for (name, mut q) in backends() {
            let ids: Vec<TimerId> = (0..5u64)
                .map(|s| q.push(SimTime::from_secs(s), "x"))
                .collect();
            for id in ids {
                assert!(q.cancel(id), "backend {name}");
            }
            assert!(q.pop().is_none(), "backend {name}");
            assert!(q.is_empty(), "backend {name}");
        }
    }

    #[test]
    fn cancel_rejects_unissued_ids_and_clear_forgets_marks() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), "a");
        assert!(!q.cancel(TimerId(999)), "never-issued id");
        assert!(q.cancel(a));
        q.clear();
        // After clear, old marks are forgotten and fresh pushes pop
        // normally even though their seqs continue past the cleared ones.
        let b = q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        // Cancelling an already-popped handle is accepted (the queue cannot
        // detect it) and harmless: the mark matches no future seq.
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
    }

    #[test]
    fn wheel_interleaved_push_pop_matches_heap() {
        // Deterministic pseudo-random interleaving of pushes and pops (with
        // monotone non-decreasing push times, as the engine guarantees)
        // produces identical sequences from both backends.
        let mut heap = EventQueue::new();
        let mut wheel = EventQueue::with_backend(QueueBackend::TimerWheel {
            tick: SimDuration::from_nanos(4096),
        });
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..2000u64 {
            if rng() % 3 != 0 {
                let at = now + rng() % 100_000;
                heap.push(SimTime::from_nanos(at), i);
                wheel.push(SimTime::from_nanos(at), i);
            } else {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_mixed_horizons_match_heap() {
        // The simulator's real timer profile: dense near-future deliveries
        // (tens of microseconds to ~1 s) mixed with sparse TTL-scale
        // timers hours out, popped with interleaved pushes so the cursor
        // crosses every level boundary repeatedly.
        let mut heap = EventQueue::new();
        let mut wheel = EventQueue::with_backend(QueueBackend::TimerWheel {
            tick: SimDuration::from_nanos(1 << 26), // ~67 ms
        });
        let mut state = 0xD1B54A32D192ED03u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..4000u64 {
            if rng() % 4 != 0 {
                // 1-in-8: a far timer (up to ~4 hours); else a delivery
                // within ~2 s.
                let gap = if rng() % 8 == 0 {
                    rng() % 14_400_000_000_000
                } else {
                    rng() % 2_000_000_000
                };
                let at = now + gap;
                heap.push(SimTime::from_nanos(at), i);
                wheel.push(SimTime::from_nanos(at), i);
            } else {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
