//! The pending-event set: a binary heap keyed by `(time, sequence)`.
//!
//! The sequence number breaks ties between events scheduled for the same
//! instant in FIFO order, which keeps runs deterministic regardless of how
//! `BinaryHeap` resolves equal keys internally.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queued for execution at a given instant.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by `(time, insertion sequence)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at `at`. Events with equal instants pop in
    /// the order they were pushed.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "t2-first");
        q.push(SimTime::from_secs(1), "t1");
        q.push(SimTime::from_secs(2), "t2-second");
        assert_eq!(q.pop().unwrap().1, "t1");
        assert_eq!(q.pop().unwrap().1, "t2-first");
        assert_eq!(q.pop().unwrap().1, "t2-second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clear_empties_but_keeps_working() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.clear();
        assert!(q.is_empty());
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
    }
}
