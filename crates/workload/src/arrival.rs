//! Query arrival processes.
//!
//! The paper generates queries "with an arrival rate λ" whose inter-arrival
//! time follows either an exponential distribution (default) or the
//! heavy-tailed Pareto distribution with `F(x) = 1 − (k/(x+k))^α`, where the
//! scale `k` is "set so that (α−1)/k equals the query arrival rate λ".

use rand::Rng;

use dup_sim::{SimDuration, StreamRng};

use crate::variates::{exp_variate, lomax_variate};

/// A renewal process producing inter-arrival gaps.
pub trait ArrivalProcess {
    /// Draws the gap until the next arrival.
    fn next_gap(&mut self, rng: &mut StreamRng) -> SimDuration;

    /// The configured mean arrival rate (arrivals per second).
    fn rate(&self) -> f64;
}

/// Poisson arrivals: exponential inter-arrival times with mean `1/λ`.
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    rate: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with `rate` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "arrival rate must be positive and finite, got {rate}"
        );
        PoissonArrivals { rate }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut StreamRng) -> SimDuration {
        SimDuration::from_secs_f64(exp_variate(rng, self.rate))
    }

    fn rate(&self) -> f64 {
        self.rate
    }
}

/// Bursty Pareto (Lomax) arrivals, as measured in real Gnutella traces.
///
/// Smaller `α` means burstier arrivals: many queries land in short intervals
/// separated by long idle stretches, while the mean rate stays `λ`.
#[derive(Debug, Clone, Copy)]
pub struct ParetoArrivals {
    alpha: f64,
    k: f64,
    rate: f64,
}

impl ParetoArrivals {
    /// Creates Pareto arrivals with shape `alpha` and mean rate `rate`
    /// (`k = (α−1)/λ`, per the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `1 < alpha < 2` (the paper's "usually 2 > α > 0" with
    /// the additional `α > 1` needed for the mean to exist) and `rate > 0`.
    pub fn new(alpha: f64, rate: f64) -> Self {
        assert!(
            alpha > 1.0 && alpha < 2.0,
            "Pareto shape must be in (1, 2) for a finite mean, got {alpha}"
        );
        assert!(
            rate > 0.0 && rate.is_finite(),
            "arrival rate must be positive and finite, got {rate}"
        );
        ParetoArrivals {
            alpha,
            k: (alpha - 1.0) / rate,
            rate,
        }
    }

    /// The shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The scale parameter k (derived from α and λ).
    pub fn k(&self) -> f64 {
        self.k
    }
}

impl ArrivalProcess for ParetoArrivals {
    fn next_gap(&mut self, rng: &mut StreamRng) -> SimDuration {
        SimDuration::from_secs_f64(lomax_variate(rng, self.alpha, self.k))
    }

    fn rate(&self) -> f64 {
        self.rate
    }
}

/// Either arrival process, selected by experiment configuration.
#[derive(Debug, Clone, Copy)]
pub enum Arrivals {
    /// Exponential inter-arrival times.
    Poisson(PoissonArrivals),
    /// Heavy-tailed Pareto inter-arrival times.
    Pareto(ParetoArrivals),
}

impl Arrivals {
    /// Poisson arrivals at `rate` queries per second.
    pub fn poisson(rate: f64) -> Self {
        Arrivals::Poisson(PoissonArrivals::new(rate))
    }

    /// Pareto arrivals with shape `alpha` at mean `rate`.
    pub fn pareto(alpha: f64, rate: f64) -> Self {
        Arrivals::Pareto(ParetoArrivals::new(alpha, rate))
    }
}

impl ArrivalProcess for Arrivals {
    fn next_gap(&mut self, rng: &mut StreamRng) -> SimDuration {
        match self {
            Arrivals::Poisson(p) => p.next_gap(rng),
            Arrivals::Pareto(p) => p.next_gap(rng),
        }
    }

    fn rate(&self) -> f64 {
        match self {
            Arrivals::Poisson(p) => p.rate(),
            Arrivals::Pareto(p) => p.rate(),
        }
    }
}

/// Draws a burn-in offset uniform in `[0, mean_gap)` so replicated runs do
/// not all start with an arrival at t = 0.
pub fn phase_offset(rng: &mut StreamRng, rate: f64) -> SimDuration {
    SimDuration::from_secs_f64(rng.gen::<f64>() / rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_sim::stream_rng;

    fn mean_gap_secs(p: &mut impl ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = stream_rng(seed, "arrival-test");
        let mut total = 0.0;
        for _ in 0..n {
            total += p.next_gap(&mut rng).as_secs_f64();
        }
        total / n as f64
    }

    #[test]
    fn poisson_mean_gap_is_one_over_lambda() {
        for lambda in [0.1, 1.0, 10.0] {
            let mut p = PoissonArrivals::new(lambda);
            let mean = mean_gap_secs(&mut p, 100_000, 7);
            assert!(
                (mean - 1.0 / lambda).abs() / (1.0 / lambda) < 0.02,
                "λ={lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn pareto_mean_gap_matches_lambda() {
        // Only α=1.2 is testable by sample mean: α=1.05 has infinite
        // variance and its sample mean converges like n^(-0.05).
        let mut p = ParetoArrivals::new(1.2, 1.0);
        let mean = mean_gap_secs(&mut p, 2_000_000, 11);
        assert!((mean - 1.0).abs() < 0.25, "α=1.2 λ=1: mean {mean}");
    }

    #[test]
    fn pareto_alpha_105_median_matches_theory() {
        // For the heavy α=1.05 tail, check the (robust) median instead of
        // the mean: median = k (2^{1/α} − 1).
        let mut p = ParetoArrivals::new(1.05, 2.0);
        let mut rng = stream_rng(13, "median");
        let mut gaps: Vec<f64> = (0..100_001)
            .map(|_| p.next_gap(&mut rng).as_secs_f64())
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = gaps[gaps.len() / 2];
        let theory = p.k() * (2f64.powf(1.0 / 1.05) - 1.0);
        assert!(
            (median - theory).abs() / theory < 0.05,
            "median {median} vs {theory}"
        );
    }

    #[test]
    fn pareto_k_derivation() {
        let p = ParetoArrivals::new(1.2, 4.0);
        assert!((p.k() - 0.05).abs() < 1e-12);
        assert_eq!(p.alpha(), 1.2);
        assert_eq!(p.rate(), 4.0);
    }

    #[test]
    fn pareto_is_burstier_than_poisson() {
        // Squared coefficient of variation: exponential has CV²=1; Lomax with
        // α<2 has infinite variance, so its empirical CV² should be clearly
        // larger.
        let mut rng = stream_rng(3, "cv");
        let n = 200_000;
        let cv2 = |gaps: &[f64]| {
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let v = gaps.iter().map(|g| (g - m).powi(2)).sum::<f64>() / gaps.len() as f64;
            v / (m * m)
        };
        let mut pois = PoissonArrivals::new(1.0);
        let mut par = ParetoArrivals::new(1.2, 1.0);
        let pg: Vec<f64> = (0..n)
            .map(|_| pois.next_gap(&mut rng).as_secs_f64())
            .collect();
        let ag: Vec<f64> = (0..n)
            .map(|_| par.next_gap(&mut rng).as_secs_f64())
            .collect();
        assert!(cv2(&ag) > 3.0 * cv2(&pg), "{} vs {}", cv2(&ag), cv2(&pg));
    }

    #[test]
    fn enum_dispatch_matches_concrete() {
        let mut rng1 = stream_rng(5, "x");
        let mut rng2 = stream_rng(5, "x");
        let mut a = Arrivals::poisson(2.0);
        let mut b = PoissonArrivals::new(2.0);
        for _ in 0..100 {
            assert_eq!(a.next_gap(&mut rng1), b.next_gap(&mut rng2));
        }
        assert_eq!(a.rate(), 2.0);
        assert_eq!(Arrivals::pareto(1.2, 3.0).rate(), 3.0);
    }

    #[test]
    fn phase_offset_bounded_by_mean_gap() {
        let mut rng = stream_rng(9, "phase");
        for _ in 0..1000 {
            let off = phase_offset(&mut rng, 4.0);
            assert!(off.as_secs_f64() < 0.25);
        }
    }

    #[test]
    #[should_panic(expected = "finite mean")]
    fn pareto_rejects_alpha_at_most_one() {
        ParetoArrivals::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn poisson_rejects_zero_rate() {
        PoissonArrivals::new(0.0);
    }
}
