//! Workload generators for the `dup-p2p` simulator.
//!
//! Reproduces the paper's workload model (§IV):
//!
//! * Query inter-arrival times are **exponential** (Poisson arrivals) by
//!   default, or **Pareto** with CDF `F(x) = 1 − (k/(x+k))^α` (a Lomax /
//!   Pareto-II distribution), with `k` chosen so the mean arrival rate
//!   `(α−1)/k` matches the configured `λ`.
//! * Query origins follow a **Zipf-like distribution** over node ranks:
//!   `P_i = (1/i^θ) / Σ_{k=1..n} (1/k^θ)`.
//! * Per-hop message latency is exponential with mean 0.1 s.
//!
//! All generators draw from caller-provided RNGs (see [`dup_sim::rng`]) so
//! each stochastic stream is independently seeded and reproducible.
//!
//! # Example
//!
//! ```
//! use dup_sim::stream_rng;
//! use dup_workload::{ArrivalProcess, Arrivals, ZipfSelector};
//!
//! let mut rng = stream_rng(7, "docs-workload");
//!
//! // Poisson arrivals at λ = 2 queries/s:
//! let mut arrivals = Arrivals::poisson(2.0);
//! let gap = arrivals.next_gap(&mut rng);
//! assert!(gap.as_secs_f64() > 0.0);
//!
//! // Zipf-like origins: rank 0 is the hottest node.
//! let zipf = ZipfSelector::new(100, 0.8);
//! assert!(zipf.probability(0) > zipf.probability(99));
//! let origin_rank = zipf.sample(&mut rng);
//! assert!(origin_rank < 100);
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod latency;
pub mod variates;
pub mod zipf;

pub use arrival::{ArrivalProcess, Arrivals, ParetoArrivals, PoissonArrivals};
pub use latency::HopLatency;
pub use variates::{exp_variate, lomax_variate};
pub use zipf::{RankPlacement, ZipfSchedule, ZipfSelector};
