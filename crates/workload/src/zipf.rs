//! Zipf-like query-origin selection.
//!
//! The paper distributes queries over nodes with
//! `P_i = (1/i^θ) / Σ_{k=1..n} (1/k^θ)` for ranks `i = 1..n`: a small number
//! of hot nodes generate most queries. θ near 0 is uniform; large θ
//! concentrates queries on a few hot spots.

use rand::Rng;

use dup_sim::StreamRng;

/// How Zipf ranks are assigned to nodes. The paper does not specify this, so
/// it is an explicit, reported knob (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum RankPlacement {
    /// Ranks are a seeded random permutation of the nodes (default).
    #[default]
    Random,
    /// Rank i is node index i (root gets rank 1 — hottest at the root).
    ById,
    /// Nodes sorted by tree depth, shallow first: hot nodes near the root.
    ByDepthShallowFirst,
    /// Nodes sorted by tree depth, deep first: hot nodes far from the root.
    ByDepthDeepFirst,
}

/// Samples ranks `0..n` with Zipf-like probabilities via a Walker/Vose
/// alias table: O(1) per draw after O(n) setup, one uniform variate per
/// sample — the same RNG consumption as the inverse-CDF search it replaced,
/// so other seeded streams are unperturbed.
#[derive(Debug, Clone)]
pub struct ZipfSelector {
    /// Exact per-rank probabilities (the paper's formula).
    probs: Vec<f64>,
    /// Alias table: a draw landing in column `i` yields rank `i` when its
    /// fractional part is below `cut[i]`, else rank `alias[i]`.
    cut: Vec<f64>,
    alias: Vec<u32>,
    theta: f64,
}

impl ZipfSelector {
    /// Builds a selector over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf selector needs at least one rank");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf exponent must be non-negative and finite, got {theta}"
        );
        assert!(
            n <= u32::MAX as usize,
            "rank count exceeds alias-table range"
        );
        let mut probs: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-theta)).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        // Vose's alias construction: pair each under-full column (scaled
        // probability < 1) with an over-full one donating its excess.
        let mut cut = vec![0.0; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut scaled: Vec<f64> = probs.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            cut[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Rounding leftovers: whichever stack drains last holds columns
        // whose scaled mass is 1 up to float error — they keep themselves.
        for i in small.into_iter().chain(large) {
            cut[i as usize] = 1.0;
        }
        ZipfSelector {
            probs,
            cut,
            alias,
            theta,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always false: construction requires at least one rank. Present so
    /// `len` has its conventional companion.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The configured exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i` (0-based).
    pub fn probability(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Draws a 0-based rank.
    #[inline]
    pub fn sample(&self, rng: &mut StreamRng) -> usize {
        let u: f64 = rng.gen();
        // One uniform drives both choices: the integer part picks the
        // column, the fractional part decides column-vs-alias.
        let x = u * self.probs.len() as f64;
        let col = (x as usize).min(self.probs.len() - 1);
        if x - (col as f64) < self.cut[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// A piecewise-constant θ schedule over simulated time: a base exponent
/// from t = 0 plus zero or more later segments, each switching the whole
/// selector to a new θ. Flash-crowd scenarios spike θ mid-run so query mass
/// collapses onto the hottest ranks, then relax it back.
///
/// The segment in effect depends only on the *query time*, never on RNG
/// state, and every segment's selector draws exactly one uniform per
/// sample — so replicated drivers (space-parallel runs) pick identical
/// segments and identical origins, and an empty schedule is draw-for-draw
/// identical to a bare [`ZipfSelector`].
#[derive(Debug, Clone)]
pub struct ZipfSchedule {
    /// Segment start times in seconds; `starts[0] == 0.0`, strictly
    /// increasing.
    starts: Vec<f64>,
    /// One selector per segment, all over the same rank count.
    selectors: Vec<ZipfSelector>,
}

impl ZipfSchedule {
    /// A schedule with a single segment: θ constant for the whole run.
    /// Equivalent to `ZipfSchedule::new(n, theta, &[])`.
    pub fn constant(n: usize, theta: f64) -> Self {
        ZipfSchedule::new(n, theta, &[])
    }

    /// Builds a schedule over `n` ranks: `base_theta` from t = 0, then one
    /// segment per `(start_secs, theta)` phase.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, any θ is negative or non-finite (the
    /// [`ZipfSelector`] contract), or phase start times are not strictly
    /// increasing, positive, and finite.
    pub fn new(n: usize, base_theta: f64, phases: &[(f64, f64)]) -> Self {
        let mut starts = vec![0.0];
        let mut selectors = vec![ZipfSelector::new(n, base_theta)];
        for &(start, theta) in phases {
            assert!(
                start.is_finite() && start > *starts.last().expect("non-empty"),
                "Zipf phase starts must be strictly increasing and positive, got {start}"
            );
            starts.push(start);
            selectors.push(ZipfSelector::new(n, theta));
        }
        ZipfSchedule { starts, selectors }
    }

    /// Number of ranks (identical across segments).
    pub fn len(&self) -> usize {
        self.selectors[0].len()
    }

    /// Always false: every schedule has at least the base segment.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of segments, counting the base.
    pub fn segments(&self) -> usize {
        self.selectors.len()
    }

    /// Index of the segment in effect at `at_secs` (negative times clamp
    /// to the base segment).
    pub fn segment_at(&self, at_secs: f64) -> usize {
        self.starts.partition_point(|&s| s <= at_secs).max(1) - 1
    }

    /// The selector in effect at `at_secs`.
    pub fn selector_at(&self, at_secs: f64) -> &ZipfSelector {
        &self.selectors[self.segment_at(at_secs)]
    }

    /// Draws a 0-based rank using the segment in effect at `at_secs`.
    /// Exactly one uniform per call, whatever the segment.
    #[inline]
    pub fn sample(&self, at_secs: f64, rng: &mut StreamRng) -> usize {
        self.selector_at(at_secs).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_sim::stream_rng;

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.5, 0.8, 2.0, 4.0] {
            let z = ZipfSelector::new(100, theta);
            let sum: f64 = (0..100).map(|i| z.probability(i)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "θ={theta}: {sum}");
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfSelector::new(10, 0.0);
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_decrease_with_rank() {
        let z = ZipfSelector::new(50, 0.8);
        for i in 1..50 {
            assert!(z.probability(i) <= z.probability(i - 1) + 1e-15);
        }
    }

    #[test]
    fn matches_paper_formula() {
        let (n, theta) = (8, 1.3);
        let z = ZipfSelector::new(n, theta);
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-theta)).sum();
        for i in 0..n {
            let expect = ((i + 1) as f64).powf(-theta) / norm;
            assert!((z.probability(i) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match() {
        let z = ZipfSelector::new(20, 1.0);
        let mut rng = stream_rng(17, "zipf");
        let n = 400_000;
        let mut counts = [0u64; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.probability(i)).abs() < 0.005,
                "rank {i}: {emp} vs {}",
                z.probability(i)
            );
        }
    }

    #[test]
    fn large_theta_concentrates_on_rank_zero() {
        let z = ZipfSelector::new(4096, 4.0);
        assert!(z.probability(0) > 0.9);
        let mut rng = stream_rng(23, "hot");
        let hot = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
        assert!(hot > 8_800, "hot draws: {hot}");
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = ZipfSelector::new(1, 0.8);
        let mut rng = stream_rng(1, "one");
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.probability(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        ZipfSelector::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        ZipfSelector::new(4, -1.0);
    }

    #[test]
    fn alias_table_encodes_exact_probabilities() {
        // Reconstructing each rank's mass from the alias table must give
        // back the paper's formula: column i contributes cut[i]/n to rank i
        // and (1 - cut[i])/n to rank alias[i].
        for theta in [0.0, 0.8, 1.3, 4.0] {
            let n = 257; // deliberately not a power of two
            let z = ZipfSelector::new(n, theta);
            let mut reconstructed = vec![0.0f64; n];
            for col in 0..n {
                reconstructed[col] += z.cut[col] / n as f64;
                reconstructed[z.alias[col] as usize] += (1.0 - z.cut[col]) / n as f64;
            }
            for (i, &mass) in reconstructed.iter().enumerate() {
                assert!(
                    (mass - z.probability(i)).abs() < 1e-12,
                    "θ={theta} rank {i}: {mass} vs {}",
                    z.probability(i)
                );
            }
        }
    }

    #[test]
    fn sample_consumes_one_draw() {
        // The alias sampler must draw exactly one f64 per sample, so the
        // arrivals/churn streams sharing a master seed stay unperturbed.
        let z = ZipfSelector::new(100, 0.8);
        let mut a = stream_rng(5, "draws");
        let mut b = stream_rng(5, "draws");
        for _ in 0..1000 {
            z.sample(&mut a);
            let _: f64 = b.gen();
        }
        let next_a: f64 = a.gen();
        let next_b: f64 = b.gen();
        assert_eq!(next_a, next_b);
    }

    /// Upper critical value of the χ² distribution with `dof` degrees of
    /// freedom at roughly the 99.9th percentile, via the Wilson–Hilferty
    /// cube-root normal approximation (accurate to a fraction of a percent
    /// for dof ≥ 5, far tighter than the margin used below).
    fn chi2_crit_999(dof: usize) -> f64 {
        let d = dof as f64;
        let z = 3.09; // Φ⁻¹(0.999)
        let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
        d * t * t * t
    }

    #[test]
    fn chi_squared_goodness_of_fit_per_rank() {
        // Exactness of the alias sampler against the closed-form per-rank
        // probabilities: Pearson's χ² statistic over *every* rank, for
        // several (n, θ) pairs spanning uniform-ish to heavily skewed
        // regimes. Seeds are fixed, so this is a deterministic regression
        // gate, but the 99.9% critical value documents how extreme the
        // pinned draw would be if the table or the sampler were biased.
        let draws = 200_000usize;
        for (n, theta) in [(10usize, 0.5f64), (50, 1.0), (100, 0.8), (20, 2.0)] {
            let z = ZipfSelector::new(n, theta);
            let mut rng = stream_rng(8_0520, &format!("zipf-chi2/{n}/{theta}"));
            let mut counts = vec![0u64; n];
            for _ in 0..draws {
                counts[z.sample(&mut rng)] += 1;
            }
            // Pool tail ranks so every cell has expected count ≥ 5, the
            // standard validity condition for the χ² approximation.
            let mut stat = 0.0f64;
            let mut dof = 0usize;
            let (mut pooled_obs, mut pooled_exp) = (0.0f64, 0.0f64);
            for (i, &count) in counts.iter().enumerate() {
                let expect = z.probability(i) * draws as f64;
                if expect >= 5.0 {
                    let diff = count as f64 - expect;
                    stat += diff * diff / expect;
                    dof += 1;
                } else {
                    pooled_obs += count as f64;
                    pooled_exp += expect;
                }
            }
            if pooled_exp > 0.0 {
                let diff = pooled_obs - pooled_exp;
                stat += diff * diff / pooled_exp;
                dof += 1;
            }
            let crit = chi2_crit_999(dof - 1);
            assert!(
                stat < crit,
                "(n={n}, θ={theta}): χ²={stat:.1} exceeds the 99.9% critical \
                 value {crit:.1} with {} cells — sampler is biased",
                dof
            );
        }
    }

    #[test]
    fn sample_never_out_of_range() {
        let z = ZipfSelector::new(7, 0.8);
        let mut rng = stream_rng(31, "range");
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn schedule_selects_segment_by_time() {
        let s = ZipfSchedule::new(16, 0.5, &[(100.0, 3.0), (200.0, 0.5)]);
        assert_eq!(s.segments(), 3);
        assert_eq!(s.segment_at(0.0), 0);
        assert_eq!(s.segment_at(99.999), 0);
        assert_eq!(s.segment_at(100.0), 1);
        assert_eq!(s.segment_at(150.0), 1);
        assert_eq!(s.segment_at(200.0), 2);
        assert_eq!(s.segment_at(1e9), 2);
        assert_eq!(s.segment_at(-1.0), 0);
        assert_eq!(s.selector_at(150.0).theta(), 3.0);
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn empty_schedule_matches_bare_selector() {
        // A schedule with no phases must be draw-for-draw identical to the
        // plain selector, at any query time.
        let z = ZipfSelector::new(64, 0.8);
        let s = ZipfSchedule::constant(64, 0.8);
        let mut a = stream_rng(9, "sched-base");
        let mut b = stream_rng(9, "sched-base");
        for i in 0..1000 {
            let at = (i as f64) * 1.7;
            assert_eq!(s.sample(at, &mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn schedule_sample_consumes_one_draw_per_segment() {
        // Stream alignment must hold across segment switches: one uniform
        // per sample regardless of which segment is active.
        let s = ZipfSchedule::new(32, 0.2, &[(10.0, 4.0)]);
        let mut a = stream_rng(11, "sched-draws");
        let mut b = stream_rng(11, "sched-draws");
        for i in 0..200 {
            s.sample(i as f64 * 0.5, &mut a);
            let _: f64 = b.gen();
        }
        let next_a: f64 = a.gen();
        let next_b: f64 = b.gen();
        assert_eq!(next_a, next_b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_rejects_unsorted_phases() {
        ZipfSchedule::new(8, 0.5, &[(50.0, 1.0), (50.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_rejects_zero_start_phase() {
        ZipfSchedule::new(8, 0.5, &[(0.0, 1.0)]);
    }
}
