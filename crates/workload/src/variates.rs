//! Random-variate generation by inverse-CDF transform.
//!
//! Implemented by hand (rather than via `rand_distr`) because the paper's
//! Pareto form `F(x) = 1 − (k/(x+k))^α` is a Lomax distribution, which
//! `rand_distr` does not provide; the exponential comes along for free and
//! keeps both variates under one roof for testing. `rand_distr` is used in
//! dev-dependencies to cross-check.

use rand::Rng;

/// Draws a standard uniform in the open interval `(0, 1)`.
///
/// Excluding 0 keeps `ln` finite and excluding 1 keeps powers finite; the
/// probability mass removed is ~1e-16 and irrelevant to the simulation.
#[inline]
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// An exponential variate with the given rate (mean `1 / rate`).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
#[inline]
pub fn exp_variate<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    -open_unit(rng).ln() / rate
}

/// A Lomax (Pareto Type II) variate with CDF `F(x) = 1 − (k/(x+k))^α`,
/// exactly the paper's Pareto inter-arrival model. For `α > 1` the mean is
/// `k / (α − 1)`.
///
/// # Panics
///
/// Panics unless `alpha > 0` and `k > 0`.
#[inline]
pub fn lomax_variate<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: f64) -> f64 {
    assert!(alpha > 0.0, "Lomax shape must be positive, got {alpha}");
    assert!(k > 0.0, "Lomax scale must be positive, got {k}");
    // Inverse CDF: x = k * ((1-u)^(-1/α) − 1); 1−u is uniform too.
    k * (open_unit(rng).powf(-1.0 / alpha) - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(0xD0_5E)
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut r = rng();
        let n = 200_000;
        let rate = 4.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exp_variate(&mut r, rate);
            assert!(x > 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn exponential_memoryless_tail() {
        // P(X > t) = e^{-rate t}; check at t = 1 with rate 1.
        let mut r = rng();
        let n = 100_000;
        let tail = (0..n).filter(|_| exp_variate(&mut r, 1.0) > 1.0).count() as f64 / n as f64;
        assert!((tail - (-1.0f64).exp()).abs() < 0.01, "tail {tail}");
    }

    #[test]
    fn lomax_mean_matches_theory() {
        let mut r = rng();
        let (alpha, k) = (3.0, 2.0);
        let n = 400_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = lomax_variate(&mut r, alpha, k);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - k / (alpha - 1.0)).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lomax_cdf_matches_paper_form() {
        // Empirical CDF at a few points vs F(x) = 1 - (k/(x+k))^α.
        let (alpha, k) = (1.2, 0.5);
        let mut r = rng();
        let n = 300_000;
        let samples: Vec<f64> = (0..n).map(|_| lomax_variate(&mut r, alpha, k)).collect();
        for x in [0.1, 0.5, 2.0, 10.0] {
            let emp = samples.iter().filter(|&&s| s <= x).count() as f64 / n as f64;
            let theory = 1.0 - (k / (x + k)).powf(alpha);
            assert!((emp - theory).abs() < 0.01, "x={x}: emp {emp} vs {theory}");
        }
    }

    #[test]
    fn lomax_heavy_tail_is_heavier_than_exponential() {
        // With matched means (1.0), the Lomax α=1.05 tail beyond 10 should
        // dominate the exponential tail e^{-10}.
        let mut r = rng();
        let alpha = 1.05;
        let k = alpha - 1.0; // mean rate (α−1)/k = 1 → mean gap 1
        let n = 200_000;
        let lomax_tail = (0..n)
            .filter(|_| lomax_variate(&mut r, alpha, k) > 10.0)
            .count() as f64
            / n as f64;
        let exp_tail = (0..n).filter(|_| exp_variate(&mut r, 1.0) > 10.0).count() as f64 / n as f64;
        assert!(lomax_tail > 20.0 * exp_tail, "{lomax_tail} vs {exp_tail}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exp_rejects_nonpositive_rate() {
        exp_variate(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn lomax_rejects_nonpositive_shape() {
        lomax_variate(&mut rng(), 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn lomax_rejects_nonpositive_scale() {
        lomax_variate(&mut rng(), 1.0, -1.0);
    }
}
