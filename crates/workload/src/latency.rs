//! Per-hop message latency model.
//!
//! "The latency of message transfer between two nodes follows exponential
//! distribution with mean value of 0.1 seconds" (§IV). Every overlay hop —
//! request forwarding, replies, pushes, subscription traffic — draws an
//! independent transfer delay from this model.
//!
//! The model is a *shifted* exponential: a strictly positive floor
//! `min_secs` plus an exponential tail whose mean is `mean_secs −
//! min_secs`, so the overall mean stays `mean_secs`. The floor is what
//! makes space-parallel execution possible — it is the conservative
//! engine's lookahead: no message can arrive sooner than `min_secs` after
//! it was sent, so shards may run `min_secs` of simulated time apart
//! without risking a causality violation. With `min_secs = 0` the model
//! degenerates to the paper's plain exponential (and admits no lookahead).

use dup_sim::{SimDuration, StreamRng};

use crate::variates::exp_variate;

/// Shifted-exponential per-hop transfer latency.
#[derive(Debug, Clone, Copy)]
pub struct HopLatency {
    mean_secs: f64,
    min_secs: f64,
}

impl HopLatency {
    /// The paper's default: mean 0.1 s per hop.
    pub const PAPER_DEFAULT_MEAN_SECS: f64 = 0.1;

    /// Default latency floor: a tenth of the paper's mean. Small enough
    /// that the distribution stays visually exponential, large enough for
    /// useful lookahead windows.
    pub const DEFAULT_MIN_SECS: f64 = 0.01;

    /// Creates a latency model with the given mean transfer time in
    /// seconds and no floor (plain exponential).
    ///
    /// # Panics
    ///
    /// Panics unless `mean_secs` is strictly positive and finite.
    pub fn new(mean_secs: f64) -> Self {
        assert!(
            mean_secs > 0.0 && mean_secs.is_finite(),
            "hop latency mean must be positive and finite, got {mean_secs}"
        );
        HopLatency {
            mean_secs,
            min_secs: 0.0,
        }
    }

    /// Creates a shifted model: every draw is at least `min_secs`, and the
    /// overall mean remains `mean_secs`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min_secs < mean_secs` (the exponential tail needs
    /// a strictly positive mean) and both are finite.
    pub fn with_min(mean_secs: f64, min_secs: f64) -> Self {
        let mut model = HopLatency::new(mean_secs);
        assert!(
            min_secs >= 0.0 && min_secs < mean_secs && min_secs.is_finite(),
            "hop latency floor must satisfy 0 <= min ({min_secs}) < mean ({mean_secs})"
        );
        model.min_secs = min_secs;
        model
    }

    /// The paper's configuration.
    pub fn paper_default() -> Self {
        HopLatency::new(Self::PAPER_DEFAULT_MEAN_SECS)
    }

    /// Mean transfer time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.mean_secs
    }

    /// The latency floor in seconds (0 for the unshifted model).
    pub fn min_secs(&self) -> f64 {
        self.min_secs
    }

    /// The floor as an exact integer-nanosecond duration — the lookahead a
    /// conservative parallel engine may run with. Every [`sample`] is
    /// computed as this duration *plus* a non-negative tail, so `sample ≥
    /// lookahead` holds exactly in integer nanoseconds, never merely up to
    /// float rounding.
    ///
    /// [`sample`]: HopLatency::sample
    pub fn lookahead(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.min_secs)
    }

    /// Draws one hop's transfer delay.
    #[inline]
    pub fn sample(&self, rng: &mut StreamRng) -> SimDuration {
        let tail = exp_variate(rng, 1.0 / (self.mean_secs - self.min_secs));
        // Summing the two *durations* (not the two f64 seconds) guarantees
        // the result is >= the floor in exact integer nanoseconds.
        self.lookahead() + SimDuration::from_secs_f64(tail)
    }

    /// Draws one hop's transfer delay with the exponential *tail* scaled by
    /// `mult` — the slow/asymmetric-link model. Only the tail stretches;
    /// the floor is untouched, so `sample_scaled ≥ lookahead` still holds
    /// exactly and a conservative space-parallel engine's lookahead stays
    /// valid no matter how slow a link is. `mult = 1.0` is bit-identical to
    /// [`sample`] (same single variate, multiplied by one).
    ///
    /// # Panics
    ///
    /// Debug-panics unless `mult ≥ 1.0` and finite: multipliers below one
    /// would let a hop undercut the lookahead floor's *mean* contract.
    ///
    /// [`sample`]: HopLatency::sample
    #[inline]
    pub fn sample_scaled(&self, rng: &mut StreamRng, mult: f64) -> SimDuration {
        debug_assert!(
            mult >= 1.0 && mult.is_finite(),
            "link multiplier must be >= 1.0 and finite, got {mult}"
        );
        let tail = exp_variate(rng, 1.0 / (self.mean_secs - self.min_secs));
        self.lookahead() + SimDuration::from_secs_f64(tail * mult)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_sim::stream_rng;

    #[test]
    fn mean_matches_configuration() {
        let model = HopLatency::paper_default();
        let mut rng = stream_rng(41, "hop");
        let n = 200_000;
        let mut total = 0.0;
        for _ in 0..n {
            total += model.sample(&mut rng).as_secs_f64();
        }
        let mean = total / n as f64;
        assert!((mean - 0.1).abs() < 0.002, "mean {mean}");
    }

    #[test]
    fn shifted_model_keeps_the_mean_and_respects_the_floor() {
        let model = HopLatency::with_min(0.1, 0.01);
        let floor = model.lookahead();
        let mut rng = stream_rng(42, "hop-min");
        let n = 200_000;
        let mut total = 0.0;
        for _ in 0..n {
            let d = model.sample(&mut rng);
            assert!(d >= floor, "draw {d} under the floor {floor}");
            total += d.as_secs_f64();
        }
        let mean = total / n as f64;
        assert!((mean - 0.1).abs() < 0.002, "mean {mean}");
    }

    #[test]
    fn scaled_sample_at_unity_is_bit_identical() {
        let model = HopLatency::with_min(0.1, 0.01);
        let mut a = stream_rng(44, "scaled");
        let mut b = stream_rng(44, "scaled");
        for _ in 0..10_000 {
            assert_eq!(model.sample_scaled(&mut a, 1.0), model.sample(&mut b));
        }
    }

    #[test]
    fn scaled_sample_stretches_tail_but_not_floor() {
        let model = HopLatency::with_min(0.1, 0.01);
        let floor = model.lookahead();
        let mult = 4.0;
        let mut rng = stream_rng(45, "scaled-tail");
        let n = 200_000;
        let mut total = 0.0;
        for _ in 0..n {
            let d = model.sample_scaled(&mut rng, mult);
            assert!(d >= floor, "draw {d} under the floor {floor}");
            total += d.as_secs_f64();
        }
        // Mean = floor + mult * (mean - floor) = 0.01 + 4 * 0.09 = 0.37.
        let mean = total / n as f64;
        assert!((mean - 0.37).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn samples_are_positive() {
        let model = HopLatency::new(0.5);
        let mut rng = stream_rng(43, "pos");
        for _ in 0..10_000 {
            assert!(model.sample(&mut rng) > SimDuration::ZERO);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(HopLatency::new(0.25).mean_secs(), 0.25);
        assert_eq!(HopLatency::new(0.25).min_secs(), 0.0);
        assert_eq!(HopLatency::with_min(0.25, 0.05).min_secs(), 0.05);
        assert_eq!(
            HopLatency::paper_default().mean_secs(),
            HopLatency::PAPER_DEFAULT_MEAN_SECS
        );
        assert_eq!(HopLatency::new(0.25).lookahead(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_mean() {
        HopLatency::new(0.0);
    }

    #[test]
    #[should_panic(expected = "min")]
    fn rejects_floor_at_or_above_mean() {
        HopLatency::with_min(0.1, 0.1);
    }
}
