//! Per-hop message latency model.
//!
//! "The latency of message transfer between two nodes follows exponential
//! distribution with mean value of 0.1 seconds" (§IV). Every overlay hop —
//! request forwarding, replies, pushes, subscription traffic — draws an
//! independent transfer delay from this model.

use dup_sim::{SimDuration, StreamRng};

use crate::variates::exp_variate;

/// Exponential per-hop transfer latency.
#[derive(Debug, Clone, Copy)]
pub struct HopLatency {
    mean_secs: f64,
}

impl HopLatency {
    /// The paper's default: mean 0.1 s per hop.
    pub const PAPER_DEFAULT_MEAN_SECS: f64 = 0.1;

    /// Creates a latency model with the given mean transfer time in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_secs` is strictly positive and finite.
    pub fn new(mean_secs: f64) -> Self {
        assert!(
            mean_secs > 0.0 && mean_secs.is_finite(),
            "hop latency mean must be positive and finite, got {mean_secs}"
        );
        HopLatency { mean_secs }
    }

    /// The paper's configuration.
    pub fn paper_default() -> Self {
        HopLatency::new(Self::PAPER_DEFAULT_MEAN_SECS)
    }

    /// Mean transfer time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.mean_secs
    }

    /// Draws one hop's transfer delay.
    #[inline]
    pub fn sample(&self, rng: &mut StreamRng) -> SimDuration {
        SimDuration::from_secs_f64(exp_variate(rng, 1.0 / self.mean_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_sim::stream_rng;

    #[test]
    fn mean_matches_configuration() {
        let model = HopLatency::paper_default();
        let mut rng = stream_rng(41, "hop");
        let n = 200_000;
        let mut total = 0.0;
        for _ in 0..n {
            total += model.sample(&mut rng).as_secs_f64();
        }
        let mean = total / n as f64;
        assert!((mean - 0.1).abs() < 0.002, "mean {mean}");
    }

    #[test]
    fn samples_are_positive() {
        let model = HopLatency::new(0.5);
        let mut rng = stream_rng(43, "pos");
        for _ in 0..10_000 {
            assert!(model.sample(&mut rng) > SimDuration::ZERO);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(HopLatency::new(0.25).mean_secs(), 0.25);
        assert_eq!(
            HopLatency::paper_default().mean_secs(),
            HopLatency::PAPER_DEFAULT_MEAN_SECS
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_mean() {
        HopLatency::new(0.0);
    }
}
