//! Property tests for the workload generators.

use proptest::prelude::*;

use dup_sim::{stream_rng, SimDuration};
use dup_workload::{
    exp_variate, lomax_variate, ArrivalProcess, Arrivals, HopLatency, ZipfSchedule, ZipfSelector,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Zipf probabilities: normalized, monotone non-increasing in rank, and
    /// samples always in range.
    #[test]
    fn zipf_is_a_monotone_distribution(
        n in 1usize..2000,
        theta in 0.0f64..4.0,
        seed in 0u64..100,
    ) {
        let z = ZipfSelector::new(n, theta);
        let total: f64 = (0..n).map(|i| z.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        for i in 1..n {
            prop_assert!(z.probability(i) <= z.probability(i - 1) + 1e-12);
        }
        let mut rng = stream_rng(seed, "prop-zipf");
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Exponential variates: positive, finite, and deterministic per seed.
    #[test]
    fn exp_variates_well_formed(rate in 0.001f64..1000.0, seed in 0u64..100) {
        let mut a = stream_rng(seed, "prop-exp");
        let mut b = stream_rng(seed, "prop-exp");
        for _ in 0..50 {
            let x = exp_variate(&mut a, rate);
            prop_assert!(x > 0.0 && x.is_finite());
            prop_assert_eq!(x, exp_variate(&mut b, rate));
        }
    }

    /// Lomax variates are non-negative and finite for any valid parameters,
    /// and the empirical CDF respects the closed form at the median.
    #[test]
    fn lomax_variates_well_formed(
        alpha in 1.01f64..1.99,
        k in 0.01f64..100.0,
        seed in 0u64..50,
    ) {
        let mut rng = stream_rng(seed, "prop-lomax");
        let n = 2000;
        let median_theory = k * (2f64.powf(1.0 / alpha) - 1.0);
        let below = (0..n)
            .map(|_| lomax_variate(&mut rng, alpha, k))
            .inspect(|x| assert!(*x >= 0.0 && x.is_finite()))
            .filter(|&x| x <= median_theory)
            .count();
        let frac = below as f64 / n as f64;
        prop_assert!((frac - 0.5).abs() < 0.06, "median fraction {frac}");
    }

    /// Both arrival processes produce strictly positive gaps and report the
    /// configured rate.
    #[test]
    fn arrival_gaps_positive(
        lambda in 0.001f64..500.0,
        alpha in 1.01f64..1.99,
        seed in 0u64..50,
    ) {
        let mut rng = stream_rng(seed, "prop-arrivals");
        for mut process in [Arrivals::poisson(lambda), Arrivals::pareto(alpha, lambda)] {
            prop_assert_eq!(process.rate(), lambda);
            for _ in 0..20 {
                prop_assert!(process.next_gap(&mut rng) > SimDuration::ZERO);
            }
        }
    }

    /// Hop latency samples are positive for any positive mean.
    #[test]
    fn hop_latency_positive(mean in 0.0001f64..10.0, seed in 0u64..50) {
        let model = HopLatency::new(mean);
        let mut rng = stream_rng(seed, "prop-hop");
        for _ in 0..50 {
            prop_assert!(model.sample(&mut rng) > SimDuration::ZERO);
        }
    }
}

/// Upper critical value of the χ² distribution with `dof` degrees of
/// freedom at roughly the 99.9th percentile (Wilson–Hilferty cube-root
/// normal approximation), as in the per-rank gate inside `zipf.rs`.
fn chi2_crit_999(dof: usize) -> f64 {
    let d = dof as f64;
    let z = 3.09; // Φ⁻¹(0.999)
    let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
    d * t * t * t
}

/// The piecewise-θ schedule behind the flash-crowd scenario family: within
/// each segment the draws must match that segment's closed-form Zipf
/// distribution (Pearson χ² over every rank, tail-pooled to expected ≥ 5),
/// for every segment of a spike-then-relax schedule. A schedule that bled
/// one segment's selector into another — the bug this gates against —
/// would fail the skewed segment's χ² immediately.
#[test]
fn zipf_schedule_chi_squared_per_segment() {
    let n = 60usize;
    let draws = 200_000usize;
    let schedule = ZipfSchedule::new(n, 0.4, &[(500.0, 2.5), (1200.0, 0.8)]);
    assert_eq!(schedule.segments(), 3);
    // One representative sample time per segment, well inside it.
    let segment_times = [100.0, 700.0, 2000.0];
    for (seg, &at) in segment_times.iter().enumerate() {
        assert_eq!(schedule.segment_at(at), seg);
        let selector = schedule.selector_at(at);
        let mut rng = stream_rng(8_0821, &format!("zipf-sched-chi2/{seg}"));
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[schedule.sample(at, &mut rng)] += 1;
        }
        let mut stat = 0.0f64;
        let mut dof = 0usize;
        let (mut pooled_obs, mut pooled_exp) = (0.0f64, 0.0f64);
        for (i, &count) in counts.iter().enumerate() {
            let expect = selector.probability(i) * draws as f64;
            if expect >= 5.0 {
                let diff = count as f64 - expect;
                stat += diff * diff / expect;
                dof += 1;
            } else {
                pooled_obs += count as f64;
                pooled_exp += expect;
            }
        }
        if pooled_exp > 0.0 {
            let diff = pooled_obs - pooled_exp;
            stat += diff * diff / pooled_exp;
            dof += 1;
        }
        let crit = chi2_crit_999(dof - 1);
        assert!(
            stat < crit,
            "segment {seg} (θ={}): χ²={stat:.1} exceeds the 99.9% critical \
             value {crit:.1} with {dof} cells — the schedule is sampling \
             the wrong distribution for this segment",
            selector.theta()
        );
    }
}
