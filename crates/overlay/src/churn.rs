//! Churn operation descriptions shared between the overlay and the
//! protocol layer.
//!
//! §III-C distinguishes a node that *leaves on its own* (it informs its
//! neighbors, and the neighbor taking over its indices "acts as" it) from a
//! node that *fails* (its disappearance must be detected by neighbors in the
//! virtual path). The protocol layer reacts differently to the two, so the
//! distinction is part of the operation type.

use serde::{Deserialize, Serialize};

use crate::id::NodeId;

/// A topology change applied to a search tree during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnOp {
    /// A new node joins as a leaf under `parent`.
    JoinLeaf {
        /// The node the newcomer attaches beneath.
        parent: NodeId,
    },
    /// A new node joins inside the edge `parent → child`, taking over part
    /// of the key-space path (the paper's "N3′ inserted between N3 and N5").
    JoinBetween {
        /// Upper endpoint of the split edge.
        parent: NodeId,
        /// Lower endpoint of the split edge; it becomes the newcomer's child.
        child: NodeId,
    },
    /// `node` leaves gracefully; it informs neighbors first.
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// `node` fails silently; downstream virtual-path neighbors must detect
    /// the failure and re-subscribe.
    Fail {
        /// The failed node.
        node: NodeId,
    },
}

impl ChurnOp {
    /// The node that disappears, if this operation removes one.
    pub fn removed_node(&self) -> Option<NodeId> {
        match *self {
            ChurnOp::Leave { node } | ChurnOp::Fail { node } => Some(node),
            ChurnOp::JoinLeaf { .. } | ChurnOp::JoinBetween { .. } => None,
        }
    }

    /// True for the silent-failure variant.
    pub fn is_failure(&self) -> bool {
        matches!(self, ChurnOp::Fail { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removed_node_extraction() {
        assert_eq!(
            ChurnOp::Leave { node: NodeId(3) }.removed_node(),
            Some(NodeId(3))
        );
        assert_eq!(
            ChurnOp::Fail { node: NodeId(4) }.removed_node(),
            Some(NodeId(4))
        );
        assert_eq!(ChurnOp::JoinLeaf { parent: NodeId(0) }.removed_node(), None);
        assert_eq!(
            ChurnOp::JoinBetween {
                parent: NodeId(0),
                child: NodeId(1)
            }
            .removed_node(),
            None
        );
    }

    #[test]
    fn failure_flag() {
        assert!(ChurnOp::Fail { node: NodeId(1) }.is_failure());
        assert!(!ChurnOp::Leave { node: NodeId(1) }.is_failure());
    }
}
