//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense overlay-node handle.
///
/// `NodeId` is an index into per-node state tables (`u32` keeps hot structs
/// small; 4 billion simulated nodes is far beyond any experiment). Ids are
/// stable for the lifetime of a node; ids of departed nodes are never reused
/// within a run, so stale references in in-flight messages are detectable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id, NodeId(42));
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn formats_like_the_paper() {
        assert_eq!(NodeId(6).to_string(), "N6");
        assert_eq!(format!("{:?}", NodeId(3)), "N3");
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversized_index_panics() {
        NodeId::from_index(u32::MAX as usize + 1);
    }
}
