//! Structured P2P overlay substrate.
//!
//! The paper assumes a structured overlay (CAN/Chord-style) in which queries
//! for a key route along well-defined paths to the key's *authority node*;
//! the union of those paths is the **index search tree** for the key. This
//! crate provides:
//!
//! * [`SearchTree`] — the index search tree with the mutation primitives the
//!   paper's §III-C churn handling needs (insert a node into an edge, add a
//!   leaf, splice a node out, replace the root).
//! * [`topology`] — generators for the paper's random tree (per-node child
//!   count uniform in `[1, D]`) and regular trees for tests.
//! * [`chord`] — a Chord ring (u64 identifier space, finger tables,
//!   `O(log n)` lookups) from which per-key search trees are derived, so the
//!   schemes can also be exercised on a "real" structured-overlay substrate
//!   instead of the paper's synthetic topology.
//! * [`churn`] — join/leave/fail event descriptions shared with the
//!   protocol layer.
//!
//! # Example
//!
//! ```
//! use dup_overlay::{random_search_tree, ChordRing, TopologyParams};
//! use dup_sim::stream_rng;
//!
//! // The paper's synthetic topology: child counts uniform in [1, D].
//! let tree = random_search_tree(
//!     TopologyParams { nodes: 64, max_degree: 4 },
//!     &mut stream_rng(42, "docs-topology"),
//! );
//! assert_eq!(tree.len(), 64);
//! tree.check_invariants();
//!
//! // Or derive a search tree from real Chord lookups:
//! let ring = ChordRing::new(64, &mut stream_rng(42, "docs-ring"));
//! let key = 0xFEED;
//! let chord_tree = ring.search_tree(key);
//! assert_eq!(chord_tree.len(), 64);
//! // Every node's depth is its Chord lookup hop count for the key.
//! ```

#![warn(missing_docs)]

pub mod chord;
pub mod churn;
pub mod id;
pub mod topology;
pub mod tree;

pub use chord::ChordRing;
pub use churn::ChurnOp;
pub use id::NodeId;
pub use topology::{random_search_tree, regular_search_tree, TopologyParams};
pub use tree::SearchTree;
