//! A Chord distributed hash table.
//!
//! The paper's system model sits on a structured overlay "such as CAN and
//! Chord" that routes a key to its authority node along a well-defined path.
//! This module implements Chord (Stoica et al., SIGCOMM '01) at simulation
//! level: a 64-bit circular identifier space, per-node finger tables, and
//! greedy closest-preceding-finger routing in `O(log n)` hops. The union of
//! all nodes' lookup paths for one key is extracted as a [`SearchTree`], so
//! every consistency scheme can run on a *real* DHT-derived search tree as
//! well as on the paper's synthetic random tree.
//!
//! Churn is modeled at the "stabilized" level: after a join or leave the
//! ring behaves as if Chord's stabilization protocol has converged. (The
//! transient repair traffic of the DUP tree itself — the object of §III-C —
//! is modeled faithfully in the protocol layer; Chord's own stabilization
//! messages are out of scope for the paper's metrics.)

use rand::Rng;

use dup_sim::StreamRng;

use crate::id::NodeId;
use crate::tree::SearchTree;

/// Number of finger-table entries (the identifier space is 64-bit).
pub const FINGER_BITS: usize = 64;

#[derive(Debug, Clone)]
struct Member {
    /// Position on the identifier circle.
    chord_id: u64,
    /// Dense simulation handle.
    node: NodeId,
    /// `fingers[i]` is the member index of `successor(chord_id + 2^i)`.
    fingers: Vec<u32>,
}

/// A fully-stabilized Chord ring.
#[derive(Debug, Clone)]
pub struct ChordRing {
    /// Members sorted by `chord_id` (ascending).
    members: Vec<Member>,
    /// Next dense [`NodeId`] to hand out.
    next_node: u32,
}

/// True when `x` lies in the half-open circular interval `(a, b]`.
#[inline]
fn in_ring_interval(x: u64, a: u64, b: u64) -> bool {
    if a < b {
        x > a && x <= b
    } else if a > b {
        x > a || x <= b
    } else {
        // a == b: the interval spans the whole circle.
        true
    }
}

impl ChordRing {
    /// Builds a stabilized ring of `n` nodes with ids drawn uniformly from
    /// the 64-bit space (collisions re-drawn). Dense [`NodeId`]s are
    /// `0..n` in ring order of creation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, rng: &mut StreamRng) -> Self {
        assert!(n >= 1, "a Chord ring needs at least one node");
        let mut ring = ChordRing {
            members: Vec::with_capacity(n),
            next_node: 0,
        };
        for _ in 0..n {
            ring.insert_with_rng(rng);
        }
        ring.rebuild_fingers();
        ring
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members (cannot occur after construction;
    /// the last member cannot leave).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// All members as `(chord_id, node)` pairs in ring order.
    pub fn members(&self) -> impl Iterator<Item = (u64, NodeId)> + '_ {
        self.members.iter().map(|m| (m.chord_id, m.node))
    }

    /// The node responsible for `key`: the first member at or clockwise
    /// after `key` on the circle.
    pub fn authority(&self, key: u64) -> NodeId {
        self.members[self.successor_index(key)].node
    }

    /// Dense node handle → member index, if the node is on the ring.
    fn member_index(&self, node: NodeId) -> Option<usize> {
        self.members.iter().position(|m| m.node == node)
    }

    /// Index of `successor(key)` in the sorted member table.
    fn successor_index(&self, key: u64) -> usize {
        match self.members.binary_search_by_key(&key, |m| m.chord_id) {
            Ok(i) => i,
            Err(i) => i % self.members.len(),
        }
    }

    /// The next hop from `from` toward `key`: the closest preceding finger,
    /// or the authority itself when `from` immediately precedes it. `None`
    /// when `from` is already the authority.
    pub fn next_hop(&self, from: NodeId, key: u64) -> Option<NodeId> {
        let fi = self.member_index(from).expect("next_hop from non-member");
        let auth = self.successor_index(key);
        if fi == auth {
            return None;
        }
        let from_id = self.members[fi].chord_id;
        // If key ∈ (from, successor(from)], the successor is the authority:
        // hand over directly.
        let succ = &self.members[(fi + 1) % self.members.len()];
        if in_ring_interval(key, from_id, succ.chord_id) {
            return Some(succ.node);
        }
        // Otherwise jump through the closest preceding finger: the farthest
        // finger that still lies strictly within (from, key).
        for i in (0..FINGER_BITS).rev() {
            let f = &self.members[self.members[fi].fingers[i] as usize];
            if f.chord_id != from_id && in_ring_interval(f.chord_id, from_id, key.wrapping_sub(1)) {
                return Some(f.node);
            }
        }
        // No finger makes progress (tiny rings): fall back to the successor.
        Some(succ.node)
    }

    /// The full lookup path from `from` to the authority of `key`,
    /// inclusive of both endpoints.
    pub fn lookup_path(&self, from: NodeId, key: u64) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(next) = self.next_hop(cur, key) {
            path.push(next);
            cur = next;
            assert!(
                path.len() <= self.members.len() + 1,
                "lookup for key {key:#x} did not converge"
            );
        }
        path
    }

    /// Extracts the index search tree for `key`: each node's parent is its
    /// next hop toward the authority; the authority is the root.
    ///
    /// The returned tree indexes nodes by their dense [`NodeId`], which must
    /// be contiguous (true unless nodes have left the ring; after churn, use
    /// [`ChordRing::search_tree_compact`]).
    pub fn search_tree(&self, key: u64) -> SearchTree {
        let (tree, _) = self.search_tree_compact(key);
        tree
    }

    /// Like [`ChordRing::search_tree`] but also returns the mapping from
    /// tree node index to ring [`NodeId`], valid even after churn has made
    /// ring ids non-contiguous.
    pub fn search_tree_compact(&self, key: u64) -> (SearchTree, Vec<NodeId>) {
        let n = self.members.len();
        // Dense re-indexing: member order is ring order.
        let ring_ids: Vec<NodeId> = self.members.iter().map(|m| m.node).collect();
        let dense_of = |node: NodeId| -> NodeId {
            NodeId::from_index(
                self.members
                    .binary_search_by_key(&self.chord_id_of(node), |m| m.chord_id)
                    .expect("member vanished"),
            )
        };
        let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(n);
        for m in &self.members {
            parents.push(self.next_hop(m.node, key).map(dense_of));
        }
        (SearchTree::from_parents(&parents), ring_ids)
    }

    fn chord_id_of(&self, node: NodeId) -> u64 {
        self.members[self.member_index(node).expect("unknown node")].chord_id
    }

    /// Adds one node with a fresh random id, returns its handle, and
    /// re-stabilizes the ring.
    pub fn join(&mut self, rng: &mut StreamRng) -> NodeId {
        let id = self.insert_with_rng(rng);
        self.rebuild_fingers();
        id
    }

    /// Removes a node (voluntary leave or failure at the routing level —
    /// Chord repairs both to the same stabilized state) and re-stabilizes.
    ///
    /// # Panics
    ///
    /// Panics when removing the last member or an unknown node.
    pub fn leave(&mut self, node: NodeId) {
        assert!(self.members.len() > 1, "cannot remove the last ring member");
        let idx = self.member_index(node).expect("leave of unknown node");
        self.members.remove(idx);
        self.rebuild_fingers();
    }

    fn insert_with_rng(&mut self, rng: &mut StreamRng) -> NodeId {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        loop {
            let chord_id: u64 = rng.gen();
            match self.members.binary_search_by_key(&chord_id, |m| m.chord_id) {
                Ok(_) => continue, // astronomically rare collision: redraw
                Err(pos) => {
                    self.members.insert(
                        pos,
                        Member {
                            chord_id,
                            node,
                            fingers: Vec::new(),
                        },
                    );
                    return node;
                }
            }
        }
    }

    /// Recomputes every finger table (the converged result of Chord's
    /// `fix_fingers`).
    fn rebuild_fingers(&mut self) {
        let ids: Vec<u64> = self.members.iter().map(|m| m.chord_id).collect();
        let n = ids.len();
        for (mi, member) in self.members.iter_mut().enumerate() {
            member.fingers.clear();
            member.fingers.reserve(FINGER_BITS);
            let base = ids[mi];
            for bit in 0..FINGER_BITS {
                let target = base.wrapping_add(1u64 << bit);
                let idx = match ids.binary_search(&target) {
                    Ok(i) => i,
                    Err(i) => i % n,
                };
                member.fingers.push(idx as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_sim::stream_rng;

    fn ring(n: usize, seed: u64) -> ChordRing {
        ChordRing::new(n, &mut stream_rng(seed, "chord"))
    }

    #[test]
    fn interval_logic() {
        assert!(in_ring_interval(5, 3, 7));
        assert!(in_ring_interval(7, 3, 7));
        assert!(!in_ring_interval(3, 3, 7));
        // Wrapping interval (a > b).
        assert!(in_ring_interval(1, u64::MAX - 1, 3));
        assert!(in_ring_interval(u64::MAX, u64::MAX - 1, 3));
        assert!(!in_ring_interval(10, u64::MAX - 1, 3));
        // Degenerate: whole circle.
        assert!(in_ring_interval(42, 7, 7));
    }

    #[test]
    fn authority_is_successor() {
        let r = ring(64, 1);
        let members: Vec<(u64, NodeId)> = r.members().collect();
        // Key exactly at a member id maps to that member.
        assert_eq!(r.authority(members[5].0), members[5].1);
        // Key one past a member maps to the next member.
        assert_eq!(r.authority(members[5].0.wrapping_add(1)), members[6].1);
        // Key beyond the largest id wraps to the smallest.
        assert_eq!(
            r.authority(members.last().unwrap().0.wrapping_add(1)),
            members[0].1
        );
    }

    #[test]
    fn lookups_converge_in_log_hops() {
        let r = ring(1024, 2);
        let mut rng = stream_rng(3, "keys");
        let mut max_hops = 0usize;
        for _ in 0..200 {
            let key: u64 = rng.gen();
            let from = NodeId(rng.gen_range(0..1024));
            let path = r.lookup_path(from, key);
            assert_eq!(*path.last().unwrap(), r.authority(key));
            max_hops = max_hops.max(path.len() - 1);
        }
        // Chord guarantees O(log n) w.h.p.; allow generous slack over log2(1024)=10.
        assert!(max_hops <= 20, "max hops {max_hops}");
        assert!(max_hops >= 2, "lookups suspiciously short");
    }

    #[test]
    fn lookup_from_authority_is_trivial() {
        let r = ring(32, 4);
        let key = 0xDEAD_BEEF_u64;
        let auth = r.authority(key);
        assert_eq!(r.lookup_path(auth, key), vec![auth]);
        assert_eq!(r.next_hop(auth, key), None);
    }

    #[test]
    fn single_node_ring() {
        let r = ring(1, 5);
        let only = r.members().next().unwrap().1;
        assert_eq!(r.authority(123), only);
        assert_eq!(r.lookup_path(only, 123), vec![only]);
    }

    #[test]
    fn two_node_ring_routes_directly() {
        let r = ring(2, 6);
        let ms: Vec<(u64, NodeId)> = r.members().collect();
        let key = ms[0].0; // authority is ms[0]
        let path = r.lookup_path(ms[1].1, key);
        assert_eq!(path, vec![ms[1].1, ms[0].1]);
    }

    #[test]
    fn search_tree_is_valid_and_rooted_at_authority() {
        let r = ring(256, 7);
        let key = 0x1234_5678_9ABC_DEF0;
        let (tree, ring_ids) = r.search_tree_compact(key);
        tree.check_invariants();
        assert_eq!(tree.len(), 256);
        assert_eq!(ring_ids[tree.root().index()], r.authority(key));
    }

    #[test]
    fn search_tree_paths_match_lookup_paths() {
        let r = ring(128, 8);
        let key = 42u64;
        let (tree, ring_ids) = r.search_tree_compact(key);
        // Dense index of a ring node.
        let dense =
            |node: NodeId| NodeId::from_index(ring_ids.iter().position(|&x| x == node).unwrap());
        let mut rng = stream_rng(9, "from");
        for _ in 0..32 {
            let from = ring_ids[rng.gen_range(0..128)];
            let chord_path = r.lookup_path(from, key);
            let tree_path = tree.path_to_root(dense(from));
            let tree_path_ring: Vec<NodeId> =
                tree_path.iter().map(|&d| ring_ids[d.index()]).collect();
            assert_eq!(chord_path, tree_path_ring);
        }
    }

    #[test]
    fn join_and_leave_keep_ring_consistent() {
        let mut rng = stream_rng(10, "churn");
        let mut r = ChordRing::new(64, &mut rng);
        let newcomer = r.join(&mut rng);
        assert_eq!(r.len(), 65);
        let key = 999u64;
        let path = r.lookup_path(newcomer, key);
        assert_eq!(*path.last().unwrap(), r.authority(key));
        r.leave(newcomer);
        assert_eq!(r.len(), 64);
        // Tree still valid after churn.
        let (tree, _) = r.search_tree_compact(key);
        tree.check_invariants();
    }

    #[test]
    fn leave_moves_authority_to_successor() {
        let mut rng = stream_rng(11, "churn2");
        let mut r = ChordRing::new(16, &mut rng);
        let ms: Vec<(u64, NodeId)> = r.members().collect();
        let key = ms[3].0; // authority is exactly member 3
        assert_eq!(r.authority(key), ms[3].1);
        r.leave(ms[3].1);
        assert_eq!(r.authority(key), ms[4].1);
    }

    #[test]
    #[should_panic(expected = "last ring member")]
    fn last_member_cannot_leave() {
        let mut rng = stream_rng(12, "x");
        let mut r = ChordRing::new(1, &mut rng);
        let only = r.members().next().unwrap().1;
        r.leave(only);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ring(100, 77);
        let b = ring(100, 77);
        let am: Vec<_> = a.members().collect();
        let bm: Vec<_> = b.members().collect();
        assert_eq!(am, bm);
    }
}
