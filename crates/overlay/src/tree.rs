//! The index search tree.
//!
//! For one key, every node has a well-defined next hop toward the authority
//! node (the *root*); those next-hop edges form a tree. Queries travel up
//! toward the root; CUP pushes travel down the same edges; DUP's subscribe /
//! unsubscribe / substitute messages also follow these edges while its data
//! pushes take direct short-cuts.
//!
//! The tree supports the topology changes of §III-C: a joining node may be
//! inserted into an existing edge (it takes over part of a neighbor's key
//! space) or attached as a new leaf; a leaving/failed node is spliced out or
//! replaced by the neighbor that takes over its indices.

use serde::{Deserialize, Serialize};

use crate::id::NodeId;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeSlot {
    alive: bool,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: u32,
}

/// An index search tree over overlay nodes.
///
/// Node ids are dense indices; departed nodes leave dead slots behind (ids
/// are never reused within a run) so stale references held by in-flight
/// messages remain detectable via [`SearchTree::is_alive`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchTree {
    root: NodeId,
    nodes: Vec<NodeSlot>,
    alive: usize,
}

impl SearchTree {
    /// Creates a tree containing only the authority node (the root).
    pub fn new_root() -> Self {
        SearchTree {
            root: NodeId(0),
            nodes: vec![NodeSlot {
                alive: true,
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
            alive: 1,
        }
    }

    /// Builds a tree from a parent table: `parents[i]` is the parent of node
    /// `i`, with exactly one `None` entry marking the root.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, has zero or multiple roots, contains an
    /// out-of-range parent, or is not a single connected tree.
    pub fn from_parents(parents: &[Option<NodeId>]) -> Self {
        assert!(!parents.is_empty(), "parent table must be non-empty");
        let mut root = None;
        for (i, p) in parents.iter().enumerate() {
            match p {
                None => {
                    assert!(root.is_none(), "multiple roots in parent table");
                    root = Some(NodeId::from_index(i));
                }
                Some(p) => {
                    assert!(p.index() < parents.len(), "parent {p} out of range");
                    assert_ne!(p.index(), i, "node {i} is its own parent");
                }
            }
        }
        let root = root.expect("parent table has no root");
        let mut nodes: Vec<NodeSlot> = parents
            .iter()
            .map(|&p| NodeSlot {
                alive: true,
                parent: p,
                children: Vec::new(),
                depth: 0,
            })
            .collect();
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                nodes[p.index()].children.push(NodeId::from_index(i));
            }
        }
        let mut tree = SearchTree {
            root,
            alive: nodes.len(),
            nodes,
        };
        let reached = tree.recompute_depths_from(root);
        assert_eq!(
            reached, tree.alive,
            "parent table is not connected (cycle or forest)"
        );
        tree
    }

    /// The authority node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.alive
    }

    /// True when only dead slots remain (cannot happen: the root is always
    /// alive), provided for completeness.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Total slots ever allocated (live + departed).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// True when `id` refers to a live node.
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.alive)
    }

    /// The parent of `id` (`None` for the root).
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead or out of range.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let slot = &self.nodes[id.index()];
        assert!(slot.alive, "parent() on dead node {id}");
        slot.parent
    }

    /// The children of `id`.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let slot = &self.nodes[id.index()];
        assert!(slot.alive, "children() on dead node {id}");
        &slot.children
    }

    /// Hops from `id` up to the root.
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        let slot = &self.nodes[id.index()];
        assert!(slot.alive, "depth() on dead node {id}");
        slot.depth
    }

    /// Iterates `id`'s ancestors from its parent up to and including the
    /// root. Empty for the root itself.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            next: self.parent(id),
        }
    }

    /// The search path from `id` to the root, inclusive of both endpoints.
    pub fn path_to_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.depth(id) as usize + 1);
        path.push(id);
        path.extend(self.ancestors(id));
        path
    }

    /// True when `a` is a strict ancestor of `b`.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.ancestors(b).any(|n| n == a)
    }

    /// All live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// The child of `ancestor` whose subtree contains `descendant` — i.e.
    /// which downstream *branch* of `ancestor` a message from `descendant`
    /// arrives on. `None` if `descendant` is not strictly below `ancestor`.
    pub fn branch_toward(&self, ancestor: NodeId, descendant: NodeId) -> Option<NodeId> {
        let mut cur = descendant;
        loop {
            let p = self.parent(cur)?;
            if p == ancestor {
                return Some(cur);
            }
            cur = p;
        }
    }

    // ---- mutations (§III-C churn) ------------------------------------

    /// Attaches a fresh node as a new child of `parent` and returns its id.
    pub fn add_leaf(&mut self, parent: NodeId) -> NodeId {
        assert!(self.is_alive(parent), "add_leaf under dead node {parent}");
        let id = NodeId::from_index(self.nodes.len());
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(NodeSlot {
            alive: true,
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        self.alive += 1;
        id
    }

    /// Inserts a fresh node into the edge `parent → child` (the new node
    /// takes over part of `parent`'s key space on the path, as when a DHT
    /// node joins between two existing nodes). Returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics unless `child` is currently a child of `parent`.
    pub fn insert_between(&mut self, parent: NodeId, child: NodeId) -> NodeId {
        assert!(self.is_alive(parent) && self.is_alive(child));
        let pos = self.nodes[parent.index()]
            .children
            .iter()
            .position(|&c| c == child)
            .unwrap_or_else(|| panic!("{child} is not a child of {parent}"));
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeSlot {
            alive: true,
            parent: Some(parent),
            children: vec![child],
            depth: 0,
        });
        self.nodes[parent.index()].children[pos] = id;
        self.nodes[child.index()].parent = Some(id);
        self.recompute_depths_from(id);
        self.alive += 1;
        id
    }

    /// Removes a non-root node, re-parenting its children to its parent
    /// (the neighbor that takes over its key space). Returns the parent.
    ///
    /// # Panics
    ///
    /// Panics on the root: the authority's departure is modeled by
    /// [`SearchTree::replace_with_fresh`] because its indices move to a
    /// successor rather than vanishing.
    pub fn remove_splice(&mut self, id: NodeId) -> NodeId {
        assert!(self.is_alive(id), "remove_splice on dead node {id}");
        let parent = self.nodes[id.index()]
            .parent
            .expect("cannot splice out the root");
        let children = std::mem::take(&mut self.nodes[id.index()].children);
        let pslot = &mut self.nodes[parent.index()];
        pslot.children.retain(|&c| c != id);
        pslot.children.extend_from_slice(&children);
        for &c in &children {
            self.nodes[c.index()].parent = Some(parent);
            self.recompute_depths_from(c);
        }
        self.nodes[id.index()].alive = false;
        self.nodes[id.index()].parent = None;
        self.alive -= 1;
        parent
    }

    /// Revives a dead slot as a leaf under `parent` — a previously failed
    /// node rejoining a live deployment under its original identity (its
    /// id is stable across restarts; in-flight references to the old
    /// incarnation were already invalidated while the slot was dead).
    /// The revived node rejoins with no children: its old subtree was
    /// re-parented when it was spliced out.
    ///
    /// # Panics
    ///
    /// Panics when `node` is still alive or `parent` is dead.
    pub fn revive_leaf(&mut self, node: NodeId, parent: NodeId) {
        assert!(
            node.index() < self.nodes.len() && !self.nodes[node.index()].alive,
            "revive_leaf on live or unknown node {node}"
        );
        assert!(
            self.is_alive(parent),
            "revive_leaf under dead node {parent}"
        );
        let depth = self.nodes[parent.index()].depth + 1;
        let slot = &mut self.nodes[node.index()];
        slot.alive = true;
        slot.parent = Some(parent);
        slot.children.clear();
        slot.depth = depth;
        self.nodes[parent.index()].children.push(node);
        self.alive += 1;
    }

    /// Replaces `old` with a fresh node occupying the same tree position
    /// (same parent, same children) — the §III-C model of a neighbor taking
    /// over a departed node's indices, including the root. Returns the new
    /// node's id; `old` becomes dead.
    pub fn replace_with_fresh(&mut self, old: NodeId) -> NodeId {
        assert!(self.is_alive(old), "replace_with_fresh on dead node {old}");
        let id = NodeId::from_index(self.nodes.len());
        let parent = self.nodes[old.index()].parent;
        let children = std::mem::take(&mut self.nodes[old.index()].children);
        let depth = self.nodes[old.index()].depth;
        self.nodes.push(NodeSlot {
            alive: true,
            parent,
            children: children.clone(),
            depth,
        });
        for &c in &children {
            self.nodes[c.index()].parent = Some(id);
        }
        if let Some(p) = parent {
            for c in &mut self.nodes[p.index()].children {
                if *c == old {
                    *c = id;
                }
            }
        } else {
            self.root = id;
        }
        self.nodes[old.index()].alive = false;
        self.nodes[old.index()].parent = None;
        id
    }

    /// Recomputes depths for the subtree rooted at `start`; returns how many
    /// live nodes were visited.
    fn recompute_depths_from(&mut self, start: NodeId) -> usize {
        let base = match self.nodes[start.index()].parent {
            Some(p) => self.nodes[p.index()].depth + 1,
            None => 0,
        };
        self.nodes[start.index()].depth = base;
        let mut stack = vec![start];
        let mut visited = 0;
        while let Some(n) = stack.pop() {
            visited += 1;
            let d = self.nodes[n.index()].depth;
            // Children are moved out and back to satisfy the borrow checker
            // without cloning on every visit.
            let children = std::mem::take(&mut self.nodes[n.index()].children);
            for &c in &children {
                self.nodes[c.index()].depth = d + 1;
                stack.push(c);
            }
            self.nodes[n.index()].children = children;
        }
        visited
    }

    /// Verifies structural invariants; used by tests and property checks.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        assert!(self.is_alive(self.root), "root must be alive");
        assert_eq!(self.nodes[self.root.index()].depth, 0, "root depth");
        assert!(
            self.nodes[self.root.index()].parent.is_none(),
            "root must have no parent"
        );
        let mut seen = 0usize;
        for (i, slot) in self.nodes.iter().enumerate() {
            let id = NodeId::from_index(i);
            if !slot.alive {
                assert!(slot.children.is_empty(), "dead node {id} keeps children");
                continue;
            }
            seen += 1;
            if let Some(p) = slot.parent {
                let pslot = &self.nodes[p.index()];
                assert!(pslot.alive, "{id} has dead parent {p}");
                assert!(
                    pslot.children.contains(&id),
                    "{id} missing from parent {p}'s children"
                );
                assert_eq!(slot.depth, pslot.depth + 1, "depth of {id}");
            } else {
                assert_eq!(id, self.root, "non-root {id} has no parent");
            }
            for &c in &slot.children {
                assert_eq!(
                    self.nodes[c.index()].parent,
                    Some(id),
                    "child {c} does not point back at {id}"
                );
            }
        }
        assert_eq!(seen, self.alive, "alive count drifted");
        // Connectivity: everything alive must be reachable from the root.
        let mut stack = vec![self.root];
        let mut reached = 0;
        while let Some(n) = stack.pop() {
            reached += 1;
            stack.extend_from_slice(&self.nodes[n.index()].children);
        }
        assert_eq!(reached, self.alive, "tree is not connected");
    }
}

/// Iterator over a node's ancestors, parent first, root last.
pub struct Ancestors<'a> {
    tree: &'a SearchTree,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 tree: N1 root; N1→N2; N2→{N3}; N3→{N4,N5};
    /// N5→{N6}; N6→{N7,N8}. Ids are shifted down by one (N1 = NodeId(0)).
    pub(crate) fn figure1() -> SearchTree {
        let n = |i: u32| Some(NodeId(i));
        SearchTree::from_parents(&[
            None, // N1
            n(0), // N2 <- N1
            n(1), // N3 <- N2
            n(2), // N4 <- N3
            n(2), // N5 <- N3
            n(4), // N6 <- N5
            n(5), // N7 <- N6
            n(5), // N8 <- N6
        ])
    }

    #[test]
    fn figure1_structure() {
        let t = figure1();
        t.check_invariants();
        assert_eq!(t.len(), 8);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.depth(NodeId(5)), 4); // N6 is 4 hops from N1
        assert_eq!(
            t.path_to_root(NodeId(5)),
            vec![NodeId(5), NodeId(4), NodeId(2), NodeId(1), NodeId(0)]
        );
        assert_eq!(t.children(NodeId(2)), &[NodeId(3), NodeId(4)]);
        assert!(t.is_ancestor(NodeId(0), NodeId(7)));
        assert!(!t.is_ancestor(NodeId(3), NodeId(5)));
    }

    #[test]
    fn branch_toward_identifies_subtree() {
        let t = figure1();
        // From N3's (id 2) viewpoint, N6 (id 5) arrives via the N5 branch (id 4).
        assert_eq!(t.branch_toward(NodeId(2), NodeId(5)), Some(NodeId(4)));
        assert_eq!(t.branch_toward(NodeId(2), NodeId(3)), Some(NodeId(3)));
        // N4 (id 3) is not below N5 (id 4).
        assert_eq!(t.branch_toward(NodeId(4), NodeId(3)), None);
        // A node is not on a branch below itself.
        assert_eq!(t.branch_toward(NodeId(2), NodeId(2)), None);
    }

    #[test]
    fn new_root_is_singleton() {
        let t = SearchTree::new_root();
        t.check_invariants();
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(t.root()), 0);
        assert!(t.path_to_root(t.root()).len() == 1);
    }

    #[test]
    fn add_leaf_extends_tree() {
        let mut t = SearchTree::new_root();
        let a = t.add_leaf(t.root());
        let b = t.add_leaf(a);
        t.check_invariants();
        assert_eq!(t.len(), 3);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.parent(b), Some(a));
    }

    #[test]
    fn insert_between_matches_paper_example() {
        // §III-C: "a new node N3' is inserted between N3 and N5".
        let mut t = figure1();
        let n3 = NodeId(2);
        let n5 = NodeId(4);
        let n3p = t.insert_between(n3, n5);
        t.check_invariants();
        assert_eq!(t.parent(n5), Some(n3p));
        assert_eq!(t.parent(n3p), Some(n3));
        assert!(t.children(n3).contains(&n3p));
        assert!(!t.children(n3).contains(&n5));
        // Depths below the insertion shift down by one: N6 now at 5.
        assert_eq!(t.depth(NodeId(5)), 5);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn remove_splice_reattaches_children() {
        let mut t = figure1();
        let n5 = NodeId(4);
        let parent = t.remove_splice(n5);
        t.check_invariants();
        assert_eq!(parent, NodeId(2));
        assert!(!t.is_alive(n5));
        // N6 re-parents to N3 and its subtree's depth drops by one.
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(2)));
        assert_eq!(t.depth(NodeId(5)), 3);
        assert_eq!(t.depth(NodeId(7)), 4);
        assert_eq!(t.len(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot splice out the root")]
    fn splicing_root_panics() {
        let mut t = figure1();
        t.remove_splice(NodeId(0));
    }

    #[test]
    fn replace_root_promotes_fresh_node() {
        let mut t = figure1();
        let old_root = t.root();
        let new_root = t.replace_with_fresh(old_root);
        t.check_invariants();
        assert_eq!(t.root(), new_root);
        assert!(!t.is_alive(old_root));
        assert_eq!(t.parent(NodeId(1)), Some(new_root));
        assert_eq!(t.len(), 8);
        assert_eq!(t.depth(new_root), 0);
    }

    #[test]
    fn replace_interior_keeps_position() {
        let mut t = figure1();
        let n5 = NodeId(4);
        let fresh = t.replace_with_fresh(n5);
        t.check_invariants();
        assert_eq!(t.parent(fresh), Some(NodeId(2)));
        assert_eq!(t.children(fresh), &[NodeId(5)]);
        assert_eq!(t.parent(NodeId(5)), Some(fresh));
        assert_eq!(t.depth(NodeId(5)), 4, "depths unchanged by replacement");
    }

    #[test]
    fn dead_slots_are_not_alive_but_detectable() {
        let mut t = figure1();
        let n8 = NodeId(7);
        t.remove_splice(n8);
        assert!(!t.is_alive(n8));
        assert_eq!(t.capacity(), 8);
        assert_eq!(t.live_nodes().count(), 7);
    }

    #[test]
    #[should_panic(expected = "not a child of")]
    fn insert_between_requires_edge() {
        let mut t = figure1();
        t.insert_between(NodeId(0), NodeId(5)); // N6 is not a child of N1
    }

    #[test]
    #[should_panic(expected = "multiple roots")]
    fn from_parents_rejects_forest() {
        SearchTree::from_parents(&[None, None]);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn from_parents_rejects_cycle() {
        // 0 is root; 1 and 2 form a 2-cycle off to the side.
        SearchTree::from_parents(&[None, Some(NodeId(2)), Some(NodeId(1))]);
    }

    #[test]
    fn ancestors_of_root_is_empty() {
        let t = figure1();
        assert_eq!(t.ancestors(t.root()).count(), 0);
    }
}
