//! Search-tree topology generators.
//!
//! The paper's simulation setup: "a peer-to-peer network with n nodes ...
//! The maximum degree of the index search tree is D. The number of children
//! for each node is uniformly selected from [1, D]." The index is maintained
//! at the root.

use rand::Rng;

use dup_sim::StreamRng;

use crate::id::NodeId;
use crate::tree::SearchTree;

/// Parameters for random topology generation (Table I defaults: `n = 4096`,
/// `D = 4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TopologyParams {
    /// Total number of nodes, including the root.
    pub nodes: usize,
    /// Maximum children per node (`D`).
    pub max_degree: usize,
}

impl TopologyParams {
    /// The paper's Table I defaults.
    pub fn paper_default() -> Self {
        TopologyParams {
            nodes: 4096,
            max_degree: 4,
        }
    }

    fn validate(&self) {
        assert!(self.nodes >= 1, "topology needs at least the root");
        assert!(self.max_degree >= 1, "max degree must be at least 1");
    }
}

/// Generates the paper's random index search tree: nodes are attached in
/// breadth-first order, and each node draws its child count uniformly from
/// `[1, D]` (truncated when the node budget runs out).
///
/// With `D = 1` this degenerates to a chain, which the paper's model permits.
pub fn random_search_tree(params: TopologyParams, rng: &mut StreamRng) -> SearchTree {
    params.validate();
    let n = params.nodes;
    let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(n);
    parents.push(None); // root
    let mut frontier = std::collections::VecDeque::with_capacity(64);
    frontier.push_back(NodeId(0));
    while parents.len() < n {
        let parent = frontier
            .pop_front()
            .expect("frontier drained before all nodes were placed");
        let want = rng.gen_range(1..=params.max_degree);
        let take = want.min(n - parents.len());
        for _ in 0..take {
            let id = NodeId::from_index(parents.len());
            parents.push(Some(parent));
            frontier.push_back(id);
        }
    }
    SearchTree::from_parents(&parents)
}

/// Generates a complete `degree`-ary tree with exactly `nodes` nodes
/// (children assigned in breadth-first order). Deterministic; used by tests
/// and by ablations that need a regular topology.
pub fn regular_search_tree(nodes: usize, degree: usize) -> SearchTree {
    assert!(nodes >= 1, "topology needs at least the root");
    assert!(degree >= 1, "degree must be at least 1");
    let parents: Vec<Option<NodeId>> = (0..nodes)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some(NodeId::from_index((i - 1) / degree))
            }
        })
        .collect();
    SearchTree::from_parents(&parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_sim::stream_rng;

    #[test]
    fn random_tree_respects_size_and_degree() {
        let mut rng = stream_rng(1, "topo");
        for &(n, d) in &[(1usize, 4usize), (2, 1), (100, 2), (4096, 4), (777, 10)] {
            let t = random_search_tree(
                TopologyParams {
                    nodes: n,
                    max_degree: d,
                },
                &mut rng,
            );
            t.check_invariants();
            assert_eq!(t.len(), n);
            for node in t.live_nodes() {
                assert!(
                    t.children(node).len() <= d,
                    "node {node} has {} children (D={d})",
                    t.children(node).len()
                );
            }
        }
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = random_search_tree(
            TopologyParams {
                nodes: 500,
                max_degree: 4,
            },
            &mut stream_rng(9, "t"),
        );
        let b = random_search_tree(
            TopologyParams {
                nodes: 500,
                max_degree: 4,
            },
            &mut stream_rng(9, "t"),
        );
        for id in a.live_nodes() {
            assert_eq!(a.parent(id), b.parent(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_search_tree(
            TopologyParams {
                nodes: 500,
                max_degree: 4,
            },
            &mut stream_rng(1, "t"),
        );
        let b = random_search_tree(
            TopologyParams {
                nodes: 500,
                max_degree: 4,
            },
            &mut stream_rng(2, "t"),
        );
        let differs = a.live_nodes().any(|id| a.parent(id) != b.parent(id));
        assert!(differs);
    }

    #[test]
    fn degree_one_is_a_chain() {
        let t = random_search_tree(
            TopologyParams {
                nodes: 10,
                max_degree: 1,
            },
            &mut stream_rng(3, "chain"),
        );
        t.check_invariants();
        let deepest = t.live_nodes().map(|n| t.depth(n)).max().unwrap();
        assert_eq!(deepest, 9);
    }

    #[test]
    fn larger_degree_means_shallower_trees() {
        let mut rng = stream_rng(5, "depth");
        let avg_depth = |d: usize, rng: &mut _| {
            let t = random_search_tree(
                TopologyParams {
                    nodes: 4096,
                    max_degree: d,
                },
                rng,
            );
            t.live_nodes().map(|n| t.depth(n) as f64).sum::<f64>() / t.len() as f64
        };
        let d2 = avg_depth(2, &mut rng);
        let d10 = avg_depth(10, &mut rng);
        assert!(d10 < d2, "avg depth D=10 ({d10}) should be < D=2 ({d2})");
    }

    #[test]
    fn regular_tree_shape() {
        let t = regular_search_tree(7, 2);
        t.check_invariants();
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert_eq!(t.depth(NodeId(6)), 2);
    }

    #[test]
    fn regular_tree_single_node() {
        let t = regular_search_tree(1, 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least the root")]
    fn zero_nodes_panics() {
        random_search_tree(
            TopologyParams {
                nodes: 0,
                max_degree: 4,
            },
            &mut stream_rng(0, "x"),
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_degree_panics() {
        random_search_tree(
            TopologyParams {
                nodes: 4,
                max_degree: 0,
            },
            &mut stream_rng(0, "x"),
        );
    }
}
