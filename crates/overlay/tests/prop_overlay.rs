//! Property tests for the overlay substrate: arbitrary mutation sequences
//! keep the search tree structurally valid, and Chord routing always
//! converges to the correct authority.

use proptest::prelude::*;

use dup_overlay::{random_search_tree, ChordRing, NodeId, SearchTree, TopologyParams};
use dup_sim::stream_rng;

#[derive(Debug, Clone)]
enum TreeOp {
    AddLeaf(usize),
    InsertBetween(usize),
    RemoveSplice(usize),
    ReplaceFresh(usize),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0usize..4096).prop_map(TreeOp::AddLeaf),
        (0usize..4096).prop_map(TreeOp::InsertBetween),
        (0usize..4096).prop_map(TreeOp::RemoveSplice),
        (0usize..4096).prop_map(TreeOp::ReplaceFresh),
    ]
}

fn live(tree: &SearchTree, raw: usize) -> NodeId {
    let nodes: Vec<NodeId> = tree.live_nodes().collect();
    nodes[raw % nodes.len()]
}

fn live_non_root(tree: &SearchTree, raw: usize) -> Option<NodeId> {
    let nodes: Vec<NodeId> = tree.live_nodes().filter(|&n| n != tree.root()).collect();
    if nodes.is_empty() {
        None
    } else {
        Some(nodes[raw % nodes.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of churn mutations leaves the tree satisfying all
    /// structural invariants.
    #[test]
    fn mutations_preserve_tree_invariants(
        seed in 0u64..500,
        nodes in 2usize..40,
        ops in prop::collection::vec(tree_op(), 1..60),
    ) {
        let mut tree = random_search_tree(
            TopologyParams { nodes, max_degree: 4 },
            &mut stream_rng(seed, "prop-overlay"),
        );
        for op in &ops {
            match *op {
                TreeOp::AddLeaf(raw) => {
                    tree.add_leaf(live(&tree, raw));
                }
                TreeOp::InsertBetween(raw) => {
                    if let Some(child) = live_non_root(&tree, raw) {
                        let parent = tree.parent(child).expect("non-root");
                        tree.insert_between(parent, child);
                    }
                }
                TreeOp::RemoveSplice(raw) => {
                    if tree.len() > 1 {
                        if let Some(victim) = live_non_root(&tree, raw) {
                            tree.remove_splice(victim);
                        }
                    }
                }
                TreeOp::ReplaceFresh(raw) => {
                    let victim = live(&tree, raw);
                    tree.replace_with_fresh(victim);
                }
            }
            tree.check_invariants();
        }
    }

    /// Depth always equals the length of the ancestor chain, and
    /// `branch_toward` returns a child on the path for every strict
    /// descendant.
    #[test]
    fn depth_and_branches_consistent(
        seed in 0u64..500,
        nodes in 2usize..64,
        degree in 1usize..6,
    ) {
        let tree = random_search_tree(
            TopologyParams { nodes, max_degree: degree },
            &mut stream_rng(seed, "prop-depth"),
        );
        for node in tree.live_nodes() {
            prop_assert_eq!(tree.depth(node) as usize, tree.ancestors(node).count());
            if node != tree.root() {
                let branch = tree.branch_toward(tree.root(), node).expect("descendant");
                prop_assert!(branch == node || tree.is_ancestor(branch, node));
                prop_assert_eq!(tree.parent(branch), Some(tree.root()));
            }
        }
    }

    /// Chord lookups reach the authority from every start node, and the
    /// clockwise distance to the key strictly decreases hop over hop.
    #[test]
    fn chord_lookups_always_converge(
        seed in 0u64..200,
        n in 1usize..200,
        key: u64,
        from_raw in 0usize..200,
    ) {
        let ring = ChordRing::new(n, &mut stream_rng(seed, "prop-chord"));
        let members: Vec<(u64, NodeId)> = ring.members().collect();
        let from = members[from_raw % members.len()].1;
        let path = ring.lookup_path(from, key);
        prop_assert_eq!(*path.last().unwrap(), ring.authority(key));
        prop_assert!(path.len() <= n + 1);
        // Clockwise distance from node to key must strictly decrease on
        // every hop except the final hand-over: the authority itself sits
        // clockwise *after* the key (it is the key's successor), so its
        // wrapped distance is large by construction.
        let pos = |node: NodeId| members.iter().find(|&&(_, m)| m == node).unwrap().0;
        let dist = |node: NodeId| key.wrapping_sub(pos(node));
        let authority = ring.authority(key);
        for pair in path.windows(2) {
            if pair[1] == authority {
                continue;
            }
            prop_assert!(
                dist(pair[1]) < dist(pair[0]),
                "hop {} -> {} did not reduce distance",
                pair[0],
                pair[1]
            );
        }
    }

    /// The search tree extracted for any key agrees with per-node lookups
    /// and is rooted at the authority.
    #[test]
    fn chord_tree_matches_lookups(
        seed in 0u64..100,
        n in 2usize..100,
        key: u64,
    ) {
        let ring = ChordRing::new(n, &mut stream_rng(seed, "prop-chord-tree"));
        let (tree, ring_ids) = ring.search_tree_compact(key);
        tree.check_invariants();
        prop_assert_eq!(ring_ids[tree.root().index()], ring.authority(key));
        for dense in tree.live_nodes() {
            let depth = tree.depth(dense) as usize;
            let hops = ring.lookup_path(ring_ids[dense.index()], key).len() - 1;
            prop_assert_eq!(depth, hops);
        }
    }

    /// Join then leave returns authority assignments to their prior state.
    #[test]
    fn chord_join_leave_roundtrip(
        seed in 0u64..100,
        n in 2usize..64,
        keys in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let mut rng = stream_rng(seed, "prop-roundtrip");
        let mut ring = ChordRing::new(n, &mut rng);
        let before: Vec<NodeId> = keys.iter().map(|&k| ring.authority(k)).collect();
        let newcomer = ring.join(&mut rng);
        ring.leave(newcomer);
        let after: Vec<NodeId> = keys.iter().map(|&k| ring.authority(k)).collect();
        prop_assert_eq!(before, after);
    }
}
