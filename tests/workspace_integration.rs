//! Cross-crate integration tests through the `dup-p2p` facade.

use dup_p2p::prelude::*;

fn small(seed: u64) -> RunConfig {
    let mut cfg = RunConfig::paper_default(seed);
    cfg.topology = TopologySource::RandomTree(TopologyParams {
        nodes: 512,
        max_degree: 4,
    });
    cfg.lambda = 2.0;
    cfg.warmup_secs = 3_600.0;
    cfg.duration_secs = 20_000.0;
    cfg.latency_batch = 100;
    cfg
}

#[test]
fn paper_headline_holds_end_to_end() {
    let t = dup_p2p::compare_schemes(&small(1));
    // Latency: DUP ≤ CUP ≤ PCX (Figure 4a, Table III ordering).
    assert!(t.dup.latency_hops.mean <= t.cup.latency_hops.mean + 1e-9);
    assert!(t.cup.latency_hops.mean < t.pcx.latency_hops.mean);
    // Cost: DUP below both baselines in the sparse-interest regime.
    assert!(t.dup.avg_query_cost < t.pcx.avg_query_cost);
    assert!(t.dup.avg_query_cost < t.cup.avg_query_cost);
}

#[test]
fn same_seed_same_workload_across_schemes() {
    // All three schemes see the identical topology and query stream: the
    // recorded query count must agree exactly.
    let t = dup_p2p::compare_schemes(&small(2));
    assert_eq!(t.pcx.queries, t.cup.queries);
    assert_eq!(t.cup.queries, t.dup.queries);
}

#[test]
fn chord_substrate_composes_with_all_schemes() {
    let mut cfg = small(3);
    cfg.topology = TopologySource::Chord {
        nodes: 512,
        key: 0xFEED_BEEF,
    };
    let t = dup_p2p::compare_schemes(&cfg);
    assert!(t.dup.latency_hops.mean < t.pcx.latency_hops.mean);
    assert_eq!(t.dup.final_live_nodes, 512);
}

#[test]
fn chord_and_random_tree_agree_qualitatively() {
    let random = dup_p2p::compare_schemes(&small(4));
    let mut cfg = small(4);
    cfg.topology = TopologySource::Chord {
        nodes: 512,
        key: 99,
    };
    let chord = dup_p2p::compare_schemes(&cfg);
    // DUP relative cost advantage shows up on both substrates.
    assert!(random.rel_dup() < 1.05);
    assert!(chord.rel_dup() < 1.05);
}

#[test]
fn churn_with_every_scheme_stays_stable() {
    let mut cfg = small(5);
    cfg.churn = Some(ChurnConfig::balanced(0.2));
    let t = dup_p2p::compare_schemes(&cfg);
    for r in [&t.pcx, &t.cup, &t.dup] {
        assert!(r.queries > 10_000, "{}: {} queries", r.scheme, r.queries);
        assert!(r.latency_hops.mean.is_finite());
        assert!(r.final_live_nodes > 128, "{} collapsed", r.scheme);
    }
}

#[test]
fn stop_rule_and_interest_policy_compose() {
    let mut cfg = small(6);
    cfg.protocol.interest_policy = InterestPolicy::SlidingWindow;
    cfg.duration_secs = 200_000.0;
    cfg.stop = StopRule::ConvergedCi {
        min_batches: 10,
        rel_half_width: 0.3,
        check_every_secs: 2_000.0,
    };
    let t = dup_p2p::compare_schemes(&cfg);
    assert!(t.dup.sim_secs < 200_000.0, "CI stop never fired");
}

#[test]
fn pareto_and_placement_knobs_compose() {
    // Ultra-bursty arrivals plus adversarial (deep-first) hot-node placement
    // is the regime where the paper itself observes wasted pushes from
    // interest oscillation, so no ordering is asserted here — only that the
    // configuration runs to completion and the latency CI is meaningful.
    let mut cfg = small(7);
    cfg.arrivals = ArrivalKind::Pareto { alpha: 1.05 };
    cfg.rank_placement = RankPlacement::ByDepthDeepFirst;
    let t = dup_p2p::compare_schemes(&cfg);
    assert!(t.dup.queries > 1000);
    assert!(t.dup.latency_hops.mean.is_finite());
    assert!(t.dup.latency_hops.mean >= 0.0);
}

#[test]
fn staleness_ordering() {
    // Push schemes serve (nearly) no stale copies at their subscribers,
    // PCX accepts staleness by design.
    let t = dup_p2p::compare_schemes(&small(8));
    assert!(t.pcx.stale_fraction > 0.0);
    assert!(t.dup.stale_fraction <= t.pcx.stale_fraction);
    assert!(t.cup.stale_fraction <= t.pcx.stale_fraction);
}

#[test]
fn reports_serialize() {
    let t = dup_p2p::compare_schemes(&small(9));
    let json = serde_json::to_string(&t.dup).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.scheme, "DUP");
    assert_eq!(back.queries, t.dup.queries);
}
