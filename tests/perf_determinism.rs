//! Determinism and queue-backend equivalence at experiment scale.
//!
//! The hot-path overhaul (dense FIFO clocks, pooled path buffers, alias
//! Zipf sampling, hierarchical timer-wheel event queue) must not change
//! *what* the simulator computes, only how fast. Two guarantees are
//! pinned here:
//!
//! 1. **Golden determinism** — identical seeds produce bit-identical
//!    `RunReport`s, run to run and against golden values recorded when
//!    this suite was written. A change to any seeded stream (topology,
//!    arrivals, Zipf, churn, latency) shows up as a diff here and must be
//!    deliberate.
//! 2. **Backend equivalence** — the heap and hierarchical timer-wheel
//!    event queues obey the same `(time, seq)` contract, so PCX, CUP, and
//!    DUP produce byte-identical reports on either backend at Bench
//!    scale, including under churn.
//! 3. **Parallel equivalence** — ensemble runs with a fixed shard count
//!    merge to the same report whether shards execute on worker threads
//!    or sequentially; thread scheduling never reaches the results.

use dup_p2p::harness::{HarnessOpts, Scale, SchemeKind};
use dup_p2p::proto::{
    ChurnConfig, FaultConfig, FaultWindow, InterestPolicy, ProbeSink, QueueBackendConfig,
    ReliabilityConfig, RunReport,
};

fn run(cfg: &dup_p2p::proto::RunConfig, kind: SchemeKind) -> RunReport {
    dup_p2p::core::run_simulation_kind(cfg, kind, ProbeSink::disabled())
}

fn canonical_json(report: &RunReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

#[test]
fn backends_agree_for_all_schemes_at_bench_scale() {
    let opts = HarnessOpts {
        scale: Scale::Bench,
        seed: 20_0805,
        ..HarnessOpts::default()
    };
    let mut heap_cfg = opts.scale.base_config(opts.seed);
    heap_cfg.churn = Some(ChurnConfig::balanced(0.02));
    let mut wheel_cfg = heap_cfg.clone();
    wheel_cfg.queue.backend = QueueBackendConfig::TimerWheel;
    assert_eq!(heap_cfg.queue.backend, QueueBackendConfig::Heap);
    for kind in [SchemeKind::Pcx, SchemeKind::Cup, SchemeKind::Dup] {
        let heap = run(&heap_cfg, kind);
        let wheel = run(&wheel_cfg, kind);
        assert_eq!(
            canonical_json(&heap),
            canonical_json(&wheel),
            "{kind:?}: queue backend changed the simulation"
        );
    }
}

/// Backend equivalence under a TTL-expiry-heavy regime. A long index TTL
/// with the sliding-window interest policy schedules cancellation clocks
/// far past the horizon and then repeatedly supersedes them as queries
/// renew interest, so the timer wheel's coarse levels, its cascade path,
/// and its cancel/reschedule sweep carry most of the load — a code path
/// the Bench-scale test above barely touches. Both backends must still agree
/// byte-for-byte, for every scheme, with churn retiring timer subjects
/// mid-flight.
#[test]
fn backends_agree_under_expiry_heavy_workload() {
    let opts = HarnessOpts {
        scale: Scale::Bench,
        seed: 19_0214,
        ..HarnessOpts::default()
    };
    let mut heap_cfg = opts.scale.base_config(opts.seed);
    heap_cfg.protocol.ttl_secs = 7_200.0;
    heap_cfg.protocol.push_lead_secs = 30.0;
    heap_cfg.protocol.interest_policy = InterestPolicy::SlidingWindow;
    heap_cfg.churn = Some(ChurnConfig::balanced(0.04));
    heap_cfg.validate();
    let mut wheel_cfg = heap_cfg.clone();
    wheel_cfg.queue.backend = QueueBackendConfig::TimerWheel;
    for kind in [SchemeKind::Pcx, SchemeKind::Cup, SchemeKind::Dup] {
        let heap = run(&heap_cfg, kind);
        let wheel = run(&wheel_cfg, kind);
        assert_eq!(
            canonical_json(&heap),
            canonical_json(&wheel),
            "{kind:?}: queue backend diverged under expiry-heavy workload"
        );
    }
}

/// Backend equivalence with the reliability layer armed and faults live.
/// Drops force retransmit timers onto the queue, duplicates exercise the
/// receiver dedup set, and extra delays reorder traffic across channels —
/// every new code path from the ack/retransmit work (timer scheduling and
/// cancellation, backoff jitter draws, dedup, lease ticks) must consume
/// RNG streams and order events identically on both queue backends.
#[test]
fn backends_agree_with_faults_and_retransmit() {
    let opts = HarnessOpts {
        scale: Scale::Bench,
        seed: 26_0806,
        ..HarnessOpts::default()
    };
    let mut heap_cfg = opts.scale.base_config(opts.seed);
    heap_cfg.churn = Some(ChurnConfig::balanced(0.02));
    heap_cfg.faults = FaultConfig {
        drop_p: 0.15,
        duplicate_p: 0.10,
        delay_p: 0.10,
        max_extra_delay_secs: 20.0,
        churn_boost: 2.0,
        windows: vec![FaultWindow {
            start_secs: 200.0,
            end_secs: 900.0,
        }],
        ..FaultConfig::default()
    };
    heap_cfg.reliability = ReliabilityConfig {
        enabled: true,
        ack_timeout_secs: 3.0,
        backoff_factor: 2.0,
        max_backoff_secs: 60.0,
        jitter_frac: 0.1,
        max_retries: 5,
        lease_every_secs: 150.0,
    };
    heap_cfg.validate();
    let mut wheel_cfg = heap_cfg.clone();
    wheel_cfg.queue.backend = QueueBackendConfig::TimerWheel;
    for kind in [SchemeKind::Pcx, SchemeKind::Cup, SchemeKind::Dup] {
        let heap = run(&heap_cfg, kind);
        let wheel = run(&wheel_cfg, kind);
        assert_eq!(
            canonical_json(&heap),
            canonical_json(&wheel),
            "{kind:?}: queue backend diverged under faults with retransmit enabled"
        );
        // Repeating the same backend must also be bit-identical: the
        // reliability streams may not leak nondeterminism of their own.
        let again = run(&heap_cfg, kind);
        assert_eq!(
            canonical_json(&heap),
            canonical_json(&again),
            "{kind:?}: faulted reliable run is not reproducible"
        );
    }
}

#[test]
fn identical_seeds_give_bit_identical_reports() {
    let cfg = Scale::Bench.base_config(99);
    for kind in [SchemeKind::Pcx, SchemeKind::Cup, SchemeKind::Dup] {
        let a = run(&cfg, kind);
        let b = run(&cfg, kind);
        assert_eq!(canonical_json(&a), canonical_json(&b), "{kind:?} differs");
        // Float equality must hold at the bit level, not just display.
        assert_eq!(a.latency_hops.mean.to_bits(), b.latency_hops.mean.to_bits());
        assert_eq!(a.avg_query_cost.to_bits(), b.avg_query_cost.to_bits());
    }
}

/// Golden values recorded from the current implementation. These pin the
/// exact event/query streams: any change to the seeded RNG consumption,
/// event ordering, or workload sampling fails loudly here. When a change
/// is *intentional* (e.g. a new sampling algorithm), re-record via:
///
/// ```text
/// cargo test -p dup-p2p --test perf_determinism -- --nocapture golden
/// ```
///
/// and update the constants.
#[test]
fn golden_report_values_are_stable() {
    let cfg = Scale::Bench.base_config(424_242);
    let dup = run(&cfg, SchemeKind::Dup);
    let pcx = run(&cfg, SchemeKind::Pcx);
    println!(
        "golden: dup events={} queries={} latency_bits={:#x} cost_bits={:#x} peak={}",
        dup.events,
        dup.queries,
        dup.latency_hops.mean.to_bits(),
        dup.avg_query_cost.to_bits(),
        dup.peak_queue_depth,
    );
    println!(
        "golden: pcx events={} queries={} latency_bits={:#x} cost_bits={:#x} peak={}",
        pcx.events,
        pcx.queries,
        pcx.latency_hops.mean.to_bits(),
        pcx.avg_query_cost.to_bits(),
        pcx.peak_queue_depth,
    );
    assert_eq!(dup.events, GOLDEN_DUP.0, "DUP event count drifted");
    assert_eq!(dup.queries, GOLDEN_DUP.1, "DUP query count drifted");
    assert_eq!(
        dup.latency_hops.mean.to_bits(),
        GOLDEN_DUP.2,
        "DUP latency drifted"
    );
    assert_eq!(
        dup.avg_query_cost.to_bits(),
        GOLDEN_DUP.3,
        "DUP cost drifted"
    );
    assert_eq!(dup.peak_queue_depth, GOLDEN_DUP.4, "DUP peak depth drifted");
    assert_eq!(pcx.events, GOLDEN_PCX.0, "PCX event count drifted");
    assert_eq!(pcx.queries, GOLDEN_PCX.1, "PCX query count drifted");
    assert_eq!(
        pcx.latency_hops.mean.to_bits(),
        GOLDEN_PCX.2,
        "PCX latency drifted"
    );
    assert_eq!(
        pcx.avg_query_cost.to_bits(),
        GOLDEN_PCX.3,
        "PCX cost drifted"
    );
    assert_eq!(pcx.peak_queue_depth, GOLDEN_PCX.4, "PCX peak depth drifted");
}

/// (events, queries, latency_hops.mean bits, avg_query_cost bits, peak
/// queue depth) for `Scale::Bench.base_config(424_242)`.
const GOLDEN_DUP: (u64, u64, u64, u64, u64) =
    (13_314, 7_914, 0x3f9e47091f3f775d, 0x3fbe1da16a4b6f57, 42);
const GOLDEN_PCX: (u64, u64, u64, u64, u64) =
    (13_457, 7_914, 0x3fb821a443064685, 0x3fc821a443064685, 7);

/// Parallel ensemble mode: for a fixed shard count, the merged report must
/// be **bit-identical** whether the shards ran on one worker thread each
/// or sequentially on a single thread — the parallel kernel may change
/// wall-clock, never results. Also pins the merge shape: one queue-depth
/// high-water mark per shard, every time-series sample tagged with its
/// shard, and `shards = 1` staying on the classic single-queue path
/// (whose goldens are pinned above).
#[test]
fn sharded_runs_are_bit_identical_threaded_or_sequential() {
    let mut cfg = Scale::Bench.base_config(31_337);
    cfg.shards = 4;
    cfg.probe.sample_every_secs = 500.0;
    for kind in [SchemeKind::Pcx, SchemeKind::Cup, SchemeKind::Dup] {
        let threaded = dup_p2p::core::run_simulation_sharded(&cfg, kind, true);
        let sequential = dup_p2p::core::run_simulation_sharded(&cfg, kind, false);
        assert_eq!(
            canonical_json(&threaded),
            canonical_json(&sequential),
            "{kind:?}: thread scheduling leaked into the merged report"
        );
        // The public dispatch entry point routes shards > 1 to the same
        // parallel path.
        let dispatched = run(&cfg, kind);
        assert_eq!(canonical_json(&dispatched), canonical_json(&threaded));
        assert_eq!(threaded.peak_queue_depth_per_shard.len(), 4);
        assert_eq!(
            threaded.peak_queue_depth,
            *threaded.peak_queue_depth_per_shard.iter().max().unwrap(),
            "aggregate peak must be the max over shards"
        );
        assert!(
            !threaded.samples.is_empty(),
            "sampling was on; the merge dropped the time series"
        );
        let shards_seen: std::collections::BTreeSet<u32> =
            threaded.samples.iter().map(|s| s.shard).collect();
        assert_eq!(shards_seen, (0..4).collect(), "{kind:?}: sample tags");
    }
    // A single shard is the classic path: same report object, shard tag 0.
    let mut single = cfg.clone();
    single.shards = 1;
    let direct = run(&single, SchemeKind::Dup);
    let via_sharded = dup_p2p::core::run_simulation_sharded(&single, SchemeKind::Dup, true);
    assert_eq!(direct.peak_queue_depth_per_shard.len(), 1);
    assert!(direct.samples.iter().all(|s| s.shard == 0));
    // The ensemble of one derives seed "shard/0", so it is a *different*
    // (but still deterministic) run from the direct path.
    assert_eq!(
        canonical_json(&via_sharded),
        canonical_json(&dup_p2p::core::run_simulation_sharded(
            &single,
            SchemeKind::Dup,
            false
        ))
    );
}
