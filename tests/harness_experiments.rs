//! Every experiment in the registry runs end-to-end at bench scale and
//! produces well-formed, shape-consistent output.

use dup_p2p::harness::{all_experiments, HarnessOpts, Scale};

fn opts() -> HarnessOpts {
    HarnessOpts {
        scale: Scale::Bench,
        seed: 7,
        jobs: 0,
        reps: 1,
        shards: 1,
        space_shards: 1,
    }
}

#[test]
fn every_registered_experiment_runs() {
    for (name, runner) in all_experiments() {
        let out = runner(&opts());
        assert_eq!(out.name, name);
        assert!(!out.text.trim().is_empty(), "{name}: empty text output");
        assert!(out.json.is_object(), "{name}: JSON is not an object");
        assert_eq!(
            out.json.get("experiment").and_then(|v| v.as_str()),
            Some(name),
            "{name}: JSON missing experiment tag"
        );
    }
}

#[test]
fn fig4_shapes() {
    let out = dup_p2p::harness::fig4::run(&opts());
    let points = out.json["points"].as_array().unwrap();
    assert!(!points.is_empty());
    for p in points {
        let lat = p["latency"].as_array().unwrap();
        let pcx = lat[0].as_f64().unwrap();
        let dup = lat[2].as_f64().unwrap();
        assert!(
            dup <= pcx + 1e-9,
            "DUP latency above PCX at λ={}",
            p["lambda"]
        );
    }
}

#[test]
fn table2_has_all_cells() {
    let out = dup_p2p::harness::table2::run(&opts());
    let cells = out.json["cells"].as_array().unwrap();
    assert_eq!(cells.len(), 15, "5 c-values × 3 λ values");
    for c in cells {
        assert!(c["avg_query_cost"].as_f64().unwrap() >= 0.0);
    }
}

#[test]
fn table3_latency_grows_with_network_size() {
    let out = dup_p2p::harness::table3::run(&opts());
    let cells = out.json["cells"].as_array().unwrap();
    // For λ=0.1 (coldest caches), PCX latency at the largest n must exceed
    // PCX latency at the smallest n.
    let pcx_lat = |nodes: u64| -> f64 {
        cells
            .iter()
            .find(|c| c["nodes"].as_u64() == Some(nodes) && c["lambda"].as_f64() == Some(0.1))
            .map(|c| c["latency"][0].as_f64().unwrap())
            .unwrap()
    };
    let sweep = Scale::Bench.node_sweep();
    let (small, large) = (sweep[0] as u64, *sweep.last().unwrap() as u64);
    assert!(
        pcx_lat(large) > pcx_lat(small),
        "latency must grow with n: {} vs {}",
        pcx_lat(large),
        pcx_lat(small)
    );
}

#[test]
fn fig6_larger_degree_means_lower_pcx_latency() {
    let out = dup_p2p::harness::fig6::run(&opts());
    let points = out.json["points"].as_array().unwrap();
    let first = points.first().unwrap()["latency"][0].as_f64().unwrap();
    let last = points.last().unwrap()["latency"][0].as_f64().unwrap();
    assert!(last < first, "D=10 PCX latency {last} !< D=2 {first}");
}

#[test]
fn ext_staleness_pcx_dominates() {
    let out = dup_p2p::harness::extensions::run_staleness(&opts());
    for p in out.json["points"].as_array().unwrap() {
        let stale = p["stale"].as_array().unwrap();
        let pcx = stale[0].as_f64().unwrap();
        let dup = stale[2].as_f64().unwrap();
        assert!(
            dup <= pcx + 1e-9,
            "DUP staler than PCX at λ={}",
            p["lambda"]
        );
    }
}
