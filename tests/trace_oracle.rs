//! The tracer as a verified artifact: propagation trees reconstructed from
//! the probe stream must match the differential oracle's predictions.
//!
//! For every refresh of a traced DUP bench, the reconstructed
//! [`dup_p2p::proto::UpdateTrace`] has to agree with the PR-3 oracle on two
//! independent characterizations of the DUP tree:
//!
//! * the set of nodes the push reached, plus the root, equals the NCA
//!   closure of `subscribed ∪ {root}` (§III-B), and
//! * the delivered edge set equals the push edges implied by walking the
//!   oracle's expected subscriber lists down from the root.

use std::collections::BTreeSet;

use dup_core::oracle::{expected_lists, nca_closure, oracle_diff};
use dup_core::testkit::{paper_example_tree, TestBench};
use dup_p2p::prelude::*;
use dup_p2p::proto::{
    EdgeKind, FaultConfig, MsgClass, ReliabilityConfig, TraceCollector, UpdateTrace,
};

/// The push edges the oracle predicts for one refresh: walk the expected
/// subscriber lists down from the root; every non-self entry is one direct
/// push hop.
fn oracle_push_edges(
    tree: &SearchTree,
    subscribed: &BTreeSet<NodeId>,
) -> BTreeSet<(NodeId, NodeId)> {
    let lists = expected_lists(tree, subscribed);
    let mut edges = BTreeSet::new();
    let mut stack = vec![tree.root()];
    while let Some(n) = stack.pop() {
        for &e in &lists[n.index()] {
            if e != n {
                edges.insert((n, e));
                stack.push(e);
            }
        }
    }
    edges
}

/// Publishes the next version, rebuilds the collector from the full capture,
/// and asserts the reconstructed propagation tree equals the oracle's
/// prediction for the current interest state.
fn refresh_and_check(
    bench: &mut TestBench<DupScheme>,
    capture: &CaptureProbe,
    subscribed: &BTreeSet<NodeId>,
) -> UpdateTrace {
    let version = bench.refresh().version.0;
    let collector = TraceCollector::from_events(&capture.events());
    let trace = collector
        .propagation_tree(version)
        .expect("publish observed for the refreshed version");
    let tree = &bench.world.tree;

    assert!(
        trace.is_tree(),
        "v{version}: delivered edges are not a tree"
    );
    assert_eq!(trace.lost, 0, "v{version}: fault-free bench lost a push");
    assert_eq!(trace.origin, tree.root(), "v{version}: wrong origin");

    // Characterization 1: reached ∪ {root} is the NCA closure.
    let mut seeds = subscribed.clone();
    seeds.insert(tree.root());
    let closure = nca_closure(tree, &seeds);
    let mut reached = trace.reached();
    reached.insert(tree.root());
    assert_eq!(reached, closure, "v{version}: reached set ≠ NCA closure");

    // Characterization 2: the edge set is exactly the oracle's push walk.
    assert_eq!(
        trace.edge_set(),
        oracle_push_edges(tree, subscribed),
        "v{version}: edge set ≠ oracle push edges"
    );

    // Edge-kind classification agrees with the (quiescent) search tree.
    for e in &trace.edges {
        let neighbours = tree.parent(e.to) == Some(e.from) || tree.parent(e.from) == Some(e.to);
        assert_eq!(
            e.kind == EdgeKind::TreeHop,
            neighbours,
            "v{version}: edge {}→{} misclassified as {:?}",
            e.from,
            e.to,
            e.kind
        );
    }

    // And the protocol state itself still satisfies the differential oracle.
    let mismatches = oracle_diff(&bench.scheme, tree);
    assert!(mismatches.is_empty(), "v{version}: {mismatches:?}");
    trace
}

/// Figure 2 as a traced run: the reconstructed trees track the oracle
/// through every interest change on the paper's six-node example.
#[test]
fn traced_trees_match_oracle_on_paper_example() {
    let capture = CaptureProbe::new();
    let mut bench = TestBench::with_probe(
        paper_example_tree(),
        DupScheme::new(),
        2,
        ProbeSink::attach(capture.clone()),
    );
    let (n1, n3, n4, n6) = (NodeId(0), NodeId(2), NodeId(3), NodeId(5));
    let mut subscribed = BTreeSet::new();

    // Nobody subscribed: the push tree is just the root.
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    assert!(trace.edges.is_empty());

    // Figure 2(a): N6 alone — one direct short-cut push N1→N6.
    bench.make_interested(n6);
    bench.drain();
    subscribed.insert(n6);
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    assert_eq!(trace.edge_set(), [(n1, n6)].into_iter().collect());
    assert_eq!(trace.edges[0].kind, EdgeKind::ShortCut);

    // Figure 2(b): N4 joins — N3 becomes the fan-out point.
    bench.make_interested(n4);
    bench.drain();
    subscribed.insert(n4);
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    assert_eq!(
        trace.edge_set(),
        [(n1, n3), (n3, n4), (n3, n6)].into_iter().collect()
    );
    assert_eq!(trace.max_depth(), 2);

    // N6 leaves: the fan-out collapses back to one direct push.
    bench.drop_interest(n6);
    bench.drain();
    subscribed.remove(&n6);
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    assert_eq!(trace.edge_set(), [(n1, n4)].into_iter().collect());

    // N4 leaves too: back to an empty tree.
    bench.drop_interest(n4);
    bench.drain();
    subscribed.remove(&n4);
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    assert!(trace.edges.is_empty());
}

/// A three-level, twelve-leaf tree with a scattered subscriber set, checked
/// through interest changes and churn: the traced tree follows the oracle at
/// every step.
#[test]
fn traced_trees_match_oracle_under_churn() {
    // Root with 3 subtrees, each an inner node with 4 leaves.
    let mut tree = SearchTree::new_root();
    let root = tree.root();
    let mut inners = Vec::new();
    let mut leaves = Vec::new();
    for _ in 0..3 {
        let inner = tree.add_leaf(root);
        inners.push(inner);
        for _ in 0..4 {
            leaves.push(tree.add_leaf(inner));
        }
    }
    let capture = CaptureProbe::new();
    let mut bench = TestBench::with_probe(
        tree,
        DupScheme::new(),
        2,
        ProbeSink::attach(capture.clone()),
    );
    let mut subscribed: BTreeSet<NodeId> = BTreeSet::new();

    // Two leaves under the first inner node, one under the second.
    for &n in &[leaves[0], leaves[1], leaves[4]] {
        bench.make_interested(n);
        bench.drain();
        subscribed.insert(n);
    }
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    // inners[0] must fan out; leaves[4] is reached by a short-cut from root.
    assert!(trace.reached().contains(&inners[0]));
    assert!(!trace.reached().contains(&inners[1]));

    // A new leaf joins under the third inner node and subscribes.
    let newcomer = bench.join_leaf(inners[2]);
    bench.drain();
    bench.make_interested(newcomer);
    bench.drain();
    subscribed.insert(newcomer);
    refresh_and_check(&mut bench, &capture, &subscribed);

    // A node splices into the path above inners[0]: the short-cuts must
    // still skip it (it is neither subscribed nor a fan-out point).
    let spliced = bench.join_between(root, inners[0]);
    bench.drain();
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    assert!(!trace.reached().contains(&spliced));

    // Graceful departure of an unsubscribed leaf, then of a subscriber.
    bench.remove(leaves[7], true);
    bench.drain();
    refresh_and_check(&mut bench, &capture, &subscribed);

    bench.remove(leaves[1], true);
    bench.drain();
    subscribed.remove(&leaves[1]);
    let trace = refresh_and_check(&mut bench, &capture, &subscribed);
    // With one subscriber left under inners[0], the fan-out point is gone.
    assert!(!trace.reached().contains(&inners[0]));
}

/// Deterministic 1-in-16 trace sampling: every *sampled* update's
/// reconstructed tree still passes the oracle edge-for-edge, while
/// unsampled updates allocate no spans and leave no trace at all.
#[test]
fn sampled_tracing_passes_the_oracle_for_every_sampled_update() {
    use dup_p2p::proto::TraceCtx;

    // Root with 3 subtrees, each an inner node with 4 leaves.
    let mut tree = SearchTree::new_root();
    let root = tree.root();
    let mut leaves = Vec::new();
    for _ in 0..3 {
        let inner = tree.add_leaf(root);
        for _ in 0..4 {
            leaves.push(tree.add_leaf(inner));
        }
    }
    let capture = CaptureProbe::new();
    let mut bench = TestBench::with_probe(
        tree,
        DupScheme::new(),
        2,
        ProbeSink::attach(capture.clone()),
    );
    bench.world.trace = TraceCtx::with_sampling(16, 0x5EED);

    let mut subscribed: BTreeSet<NodeId> = BTreeSet::new();
    for &n in &[leaves[0], leaves[1], leaves[4], leaves[9]] {
        bench.make_interested(n);
        bench.drain();
        subscribed.insert(n);
    }

    let (mut sampled, mut unsampled) = (0u32, 0u32);
    for _ in 0..96 {
        let version = bench.refresh().version.0;
        let collector = TraceCollector::from_events(&capture.events());
        if bench.world.trace.samples_update(version) {
            sampled += 1;
            let trace = collector
                .propagation_tree(version)
                .expect("sampled update must reconstruct a trace");
            assert!(trace.is_tree(), "v{version}: delivered edges not a tree");
            assert_eq!(trace.lost, 0, "v{version}: fault-free bench lost a push");
            assert_eq!(trace.origin, bench.world.tree.root());
            assert_eq!(
                trace.edge_set(),
                oracle_push_edges(&bench.world.tree, &subscribed),
                "v{version}: sampled trace ≠ oracle push edges"
            );
        } else {
            unsampled += 1;
            assert!(
                collector.propagation_tree(version).is_none(),
                "v{version}: unsampled update leaked a trace"
            );
        }
    }
    assert!(sampled >= 2, "too few sampled updates: {sampled}/96");
    assert!(unsampled >= 64, "sampling barely thinned: {unsampled}/96");
    // The scheme itself never noticed the sampling.
    let mismatches = oracle_diff(&bench.scheme, &bench.world.tree);
    assert!(mismatches.is_empty(), "{mismatches:?}");
}

/// A dropped push that the reliability layer retransmits must land in the
/// propagation tree of the **original** update: the retransmission reuses
/// the first send's span, so the collector books the recovery delivery
/// under the same trace id instead of opening a phantom update.
///
/// The run injects drops only (no fault duplication), so any edge observed
/// with more than one delivery is necessarily a retransmitted copy of a
/// message whose ack was lost — double proof that retransmits carry the
/// original causal identity.
#[test]
fn retransmitted_pushes_are_attributed_to_the_original_update() {
    let mut cfg = RunConfig::builder(0xD0_5E_ED)
        .nodes(48)
        .lambda(1.5)
        .protocol(ProtocolConfig {
            ttl_secs: 600.0,
            push_lead_secs: 30.0,
            threshold_c: 2,
            ..ProtocolConfig::default()
        })
        .warmup_secs(200.0)
        .duration_secs(2_500.0)
        .build();
    cfg.faults = FaultConfig {
        drop_p: 0.25,
        ..FaultConfig::default() // empty windows = faulted for the whole run
    };
    cfg.reliability = ReliabilityConfig {
        enabled: true,
        ack_timeout_secs: 3.0,
        backoff_factor: 2.0,
        max_backoff_secs: 60.0,
        jitter_frac: 0.1,
        max_retries: 5,
        lease_every_secs: 0.0,
    };
    cfg.validate();

    let capture = CaptureProbe::new();
    run_simulation_kind(&cfg, SchemeKind::Dup, ProbeSink::attach(capture.clone()));
    let events = capture.events();

    // The scenario must actually exercise the recovery path.
    let retransmitted_pushes: Vec<(f64, NodeId, NodeId)> = events
        .iter()
        .filter_map(|(at, ev)| match ev {
            ProbeEvent::Retransmit {
                from,
                to,
                class: MsgClass::Push,
                ..
            } => Some((at.as_secs_f64(), *from, *to)),
            _ => None,
        })
        .collect();
    assert!(
        !retransmitted_pushes.is_empty(),
        "scenario produced no push retransmissions"
    );

    let collector = TraceCollector::from_events(&events);
    let versions: BTreeSet<u64> = events
        .iter()
        .filter_map(|(_, ev)| match ev {
            ProbeEvent::UpdatePublished { version, .. } => Some(*version),
            _ => None,
        })
        .collect();
    let traces: Vec<UpdateTrace> = versions
        .iter()
        .filter_map(|&v| collector.propagation_tree(v))
        .collect();
    assert!(!traces.is_empty(), "no propagation trees reconstructed");

    // At least one retransmitted push must show up as a *delivered* edge of
    // an update's tree, completed at or after the retransmission fired —
    // the recovery was attributed to the update it repaired.
    let recovered = retransmitted_pushes.iter().any(|&(at, from, to)| {
        traces.iter().any(|t| {
            t.edges
                .iter()
                .any(|e| e.from == from && e.to == to && e.delivered_secs >= at)
        })
    });
    assert!(
        recovered,
        "no retransmitted push was booked into its original update's tree"
    );

    // With duplicate_p = 0, a second delivery of the same span can only be
    // a retransmission racing its (lost or late) ack: the collector must
    // merge it into the existing edge, and the receiver must suppress the
    // duplicate dispatch rather than re-applying the update.
    let doubly_delivered = traces
        .iter()
        .flat_map(|t| &t.edges)
        .any(|e| e.deliveries > 1);
    assert!(
        doubly_delivered,
        "expected at least one ack-loss double delivery merged into its edge"
    );
    assert!(
        events
            .iter()
            .any(|(_, ev)| matches!(ev, ProbeEvent::DupSuppressed { .. })),
        "receivers never suppressed a duplicate tracked delivery"
    );
}
