//! Space-parallel acceptance gate (ISSUE 7): a single ≥10k-node DUP run
//! partitioned across N space shards must reproduce the sequential run's
//! event log bit for bit for N ∈ {1, 2, 4}, and the merged final state
//! must pass the NCA-closure differential oracle.
//!
//! The full-size test is `#[ignore]`d because it simulates 10k+ nodes;
//! run it explicitly with:
//!
//! ```text
//! cargo test --release --test space_acceptance -- --ignored
//! ```

use dup_core::{check_tree_invariants, DupScheme};
use dup_harness::run_flash_space_cell;
use dup_overlay::TopologyParams;
use dup_proto::{run_simulation_space_settled, RunConfig, Scheme, TopologySource};

const HEAL_PHASES: usize = 8;

fn acceptance_cfg(nodes: usize, space_shards: usize) -> RunConfig {
    RunConfig {
        topology: TopologySource::RandomTree(TopologyParams {
            nodes,
            max_degree: 4,
        }),
        lambda: 8.0,
        warmup_secs: 500.0,
        duration_secs: 2_000.0,
        latency_batch: 50,
        space_shards,
        ..RunConfig::paper_default(0xD0_2026)
    }
}

/// Runs DUP at `space_shards`, returns the sorted merged log plus the
/// oracle verdict on the owner-locally merged final state.
fn run_at(nodes: usize, space_shards: usize) -> (Vec<dup_proto::LogRecord>, Result<(), String>) {
    let cfg = acceptance_cfg(nodes, space_shards);
    let (settled, log) =
        run_simulation_space_settled(&cfg, DupScheme::new, true, HEAL_PHASES, |s, ctx, _| {
            s.on_lease_tick(ctx);
        });
    let mut merged = DupScheme::new();
    for (i, (scheme, _)) in settled.shards.iter().enumerate() {
        merged.adopt_owned_lists(scheme, |n| settled.map.owner(n) == i);
    }
    let oracle =
        check_tree_invariants(&merged, &settled.shards[0].1.tree).map_err(|r| r.to_string());
    (log, oracle)
}

fn shard_counts_agree(nodes: usize) {
    let (log1, oracle1) = run_at(nodes, 1);
    assert!(!log1.is_empty(), "run produced no deliveries");
    oracle1.expect("1-shard DUP run failed the differential oracle");
    for shards in [2usize, 4] {
        let (log_n, oracle_n) = run_at(nodes, shards);
        assert_eq!(
            log1, log_n,
            "{shards}-shard event log diverged from the 1-shard log"
        );
        oracle_n.unwrap_or_else(|r| {
            panic!("{shards}-shard DUP run failed the differential oracle:\n{r}")
        });
    }
}

/// Small always-on tripwire so shard-count divergence is caught by plain
/// `cargo test` long before the full-size gate runs.
#[test]
fn dup_logs_bit_identical_across_shard_counts_small() {
    shard_counts_agree(256);
}

/// The ISSUE 7 acceptance gate proper: ≥10k nodes, N ∈ {1, 2, 4}.
#[test]
#[ignore = "10k-node simulation; run with --release -- --ignored"]
fn dup_logs_bit_identical_across_shard_counts_10k() {
    shard_counts_agree(10_240);
}

/// The adversarial flash-crowd scenario (piecewise-θ spike plus a loss
/// window) at `--space-shards 2` must replay the sequential event log bit
/// for bit and pass the merged-state oracle — determinism under active
/// fault scripting, not just the quiet paper workload (ISSUE 8).
#[test]
fn flash_crowd_scenario_bit_identical_across_shards() {
    for seed in [42u64, 0x005C_EA05] {
        let cell = run_flash_space_cell(seed);
        assert!(cell.log_records > 0, "seed {seed} produced no deliveries");
        assert!(
            cell.passed,
            "flash-crowd space cell failed for seed {seed} \
             (logs_identical={}, oracle_ok={}):\n{}",
            cell.logs_identical, cell.oracle_ok, cell.detail
        );
    }
}
