//! Integration tests for the observability layer: scheme-kind dispatch,
//! probe/report reconciliation, and the Figure 2 trace sequence.

use dup_core::testkit::{paper_example_tree, TestBench};
use dup_p2p::prelude::*;
use dup_p2p::proto::MsgClass;

/// A small, fast configuration shared by the dispatch tests.
fn small_cfg(seed: u64) -> RunConfig {
    RunConfig::builder(seed)
        .nodes(128)
        .warmup_secs(1_000.0)
        .duration_secs(12_000.0)
        .latency_batch(50)
        .build()
}

/// Every hop PCX spends is on the query path: it never pushes and runs no
/// maintenance protocol, so push and control ledgers stay empty.
#[test]
fn pcx_reports_no_push_or_control_hops() {
    let report = SchemeKind::Pcx.run(&small_cfg(7));
    assert!(report.queries > 0);
    assert_eq!(report.push_hops + report.control_hops, 0);
    assert!(report.request_hops > 0);
}

/// At high query rates the paper's headline holds: DUP's total overlay
/// traffic is at most CUP's on the identical topology and workload.
#[test]
fn dup_total_cost_at_most_cup_at_high_lambda() {
    let cfg = RunConfig::builder(0xD0_1C)
        .nodes(256)
        .lambda(8.0)
        .warmup_secs(2_000.0)
        .duration_secs(20_000.0)
        .latency_batch(50)
        .build();
    let total = |r: &RunReport| r.request_hops + r.reply_hops + r.push_hops + r.control_hops;
    let cup = SchemeKind::Cup.run(&cfg);
    let dup = SchemeKind::Dup.run(&cfg);
    assert!(
        total(&dup) <= total(&cup),
        "DUP total hops {} exceeded CUP total hops {}",
        total(&dup),
        total(&cup)
    );
}

/// Kind dispatch is a pure re-routing of the old per-scheme entry points:
/// same config, same seed, identical report.
#[test]
fn kind_dispatch_matches_direct_run() {
    let cfg = small_cfg(11);
    let via_kind = run_simulation_kind(&cfg, SchemeKind::Dup, ProbeSink::disabled());
    let direct = run_simulation(&cfg, DupScheme::new());
    assert_eq!(
        serde_json::to_string(&via_kind).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
}

/// Probe event counts reconcile exactly with the metric ledger: with no
/// warm-up, every charged hop was announced as a `MsgSent`, every answered
/// query as a `QueryServed`, and the report's event counter equals the
/// number of events the capture actually saw.
#[test]
fn probe_events_reconcile_with_report() {
    // No warm-up: the metrics ledger and the probe then observe the same
    // window, so the counts must match exactly.
    let cfg = RunConfig::builder(42)
        .nodes(128)
        .warmup_secs(0.0)
        .duration_secs(10_000.0)
        .latency_batch(50)
        .sample_every_secs(500.0)
        .build();
    for kind in SchemeKind::ALL {
        let capture = CaptureProbe::new();
        let report = run_simulation_kind(&cfg, kind, ProbeSink::attach(capture.clone()));

        let sent = |class: MsgClass| {
            capture.count(|e| matches!(e, ProbeEvent::MsgSent { class: c, .. } if *c == class))
        };
        assert_eq!(
            sent(MsgClass::Request),
            report.request_hops,
            "{kind} request"
        );
        assert_eq!(sent(MsgClass::Reply), report.reply_hops, "{kind} reply");
        assert_eq!(sent(MsgClass::Push), report.push_hops, "{kind} push");
        assert_eq!(
            sent(MsgClass::Control),
            report.control_hops,
            "{kind} control"
        );

        let served = capture.count(|e| matches!(e, ProbeEvent::QueryServed { .. }));
        assert_eq!(served, report.queries, "{kind} queries");

        let samples = capture.count(|e| matches!(e, ProbeEvent::Sample(_)));
        assert_eq!(samples, report.samples.len() as u64, "{kind} samples");
        assert!(!report.samples.is_empty(), "{kind} produced no samples");

        assert_eq!(capture.len() as u64, report.probe_events, "{kind} totals");
    }
}

/// Time-series samples populate the report even with no probe attached —
/// sampling is driven by the config, not by probe presence.
#[test]
fn samples_populate_without_probe() {
    let cfg = RunConfig::builder(3)
        .nodes(128)
        .warmup_secs(0.0)
        .duration_secs(10_000.0)
        .latency_batch(50)
        .sample_every_secs(1_000.0)
        .build();
    let report = run_simulation_kind(&cfg, SchemeKind::Dup, ProbeSink::disabled());
    assert_eq!(report.probe_events, 0);
    assert!(!report.samples.is_empty());
    let last = report.samples.last().unwrap();
    assert!(last.live_nodes > 0);
}

/// `JsonlProbe` round-trip: the same deterministic run streamed through a
/// JSONL file on disk re-reads into exactly the event stream a
/// `CaptureProbe` saw — same length, same per-class counts, same events in
/// the same order at the same times.
#[test]
fn jsonl_probe_roundtrips_through_file() {
    let cfg = RunConfig::builder(21)
        .nodes(128)
        .warmup_secs(0.0)
        .duration_secs(5_000.0)
        .latency_batch(50)
        .sample_every_secs(1_000.0)
        .build();

    // Reference run into an in-memory capture.
    let capture = CaptureProbe::new();
    let capture_report =
        run_simulation_kind(&cfg, SchemeKind::Dup, ProbeSink::attach(capture.clone()));

    // Identical run streamed to a JSONL file.
    let path = std::env::temp_dir().join(format!("dup_probe_rt_{}.jsonl", std::process::id()));
    let file = std::fs::File::create(&path).expect("create temp trace file");
    let jsonl_report = run_simulation_kind(
        &cfg,
        SchemeKind::Dup,
        ProbeSink::attach(JsonlProbe::new(std::io::BufWriter::new(file))),
    );
    assert_eq!(
        serde_json::to_string(&capture_report).unwrap(),
        serde_json::to_string(&jsonl_report).unwrap(),
        "same config and seed must yield identical reports"
    );

    // Re-read the file and reconcile against the capture.
    let text = std::fs::read_to_string(&path).expect("read temp trace file");
    std::fs::remove_file(&path).ok();
    let lines: Vec<dup_p2p::proto::TraceLine> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("every line parses"))
        .collect();
    let events = capture.events();
    assert_eq!(lines.len(), events.len(), "event counts reconcile");
    assert_eq!(lines.len() as u64, capture_report.probe_events);
    for (line, (at, event)) in lines.iter().zip(&events) {
        assert_eq!(line.at_secs, at.as_secs_f64());
        assert_eq!(&line.event, event);
    }

    // The per-class ledger reconciles with the re-read stream too.
    let sent = |class: MsgClass| {
        lines
            .iter()
            .filter(|l| matches!(l.event, ProbeEvent::MsgSent { class: c, .. } if c == class))
            .count() as u64
    };
    assert_eq!(sent(MsgClass::Push), capture_report.push_hops);
    assert_eq!(sent(MsgClass::Control), capture_report.control_hops);
}

/// The paper's Figure 2(a) as a probe trace: N6's subscription climbs the
/// virtual path N6→N5→N3→N2→N1 hop by hop, and the refresh that follows is
/// one direct push N1→N6.
#[test]
fn figure2_trace_shows_virtual_path_then_one_hop_push() {
    let capture = CaptureProbe::new();
    let mut bench = TestBench::with_probe(
        paper_example_tree(),
        DupScheme::new(),
        2,
        ProbeSink::attach(capture.clone()),
    );
    let (n1, n2, n3, n5, n6) = (NodeId(0), NodeId(1), NodeId(2), NodeId(4), NodeId(5));

    bench.make_interested(n6);
    bench.drain();

    // The subscribe is processed at each node of the virtual path, in
    // bottom-up order.
    let subs: Vec<NodeId> = capture
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            ProbeEvent::Subscribe { node, subject } if *subject == n6 => Some(*node),
            _ => None,
        })
        .collect();
    assert_eq!(subs, vec![n6, n5, n3, n2]);
    // Each upward hop is control traffic: N6→N5→N3→N2→N1.
    let control: Vec<(NodeId, NodeId)> = capture
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            ProbeEvent::MsgDelivered {
                from,
                to,
                class: MsgClass::Control,
                ..
            } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert_eq!(control, vec![(n6, n5), (n5, n3), (n3, n2), (n2, n1)]);

    // The refresh push skips the whole search path: one direct hop N1→N6,
    // installing the fresh copy at N6.
    let before = capture.len();
    bench.refresh();
    let after: Vec<ProbeEvent> = capture.events()[before..]
        .iter()
        .map(|(_, e)| e.clone())
        .collect();
    let pushes: Vec<(NodeId, NodeId)> = after
        .iter()
        .filter_map(|e| match e {
            ProbeEvent::MsgDelivered {
                from,
                to,
                class: MsgClass::Push,
                ..
            } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert_eq!(pushes, vec![(n1, n6)]);
    assert!(after
        .iter()
        .any(|e| matches!(e, ProbeEvent::CacheInsert { node, .. } if *node == n6)));

    // The bench's emitted counter agrees with what the capture saw.
    assert_eq!(capture.len() as u64, bench.world.probe.emitted());
}
