//! Minimal offline drop-in for the subset of `criterion` this workspace
//! uses: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `iter`, `iter_batched`, and `BatchSize`.
//!
//! Measurement is deliberately simple — per-sample wall-clock timing with an
//! adaptive inner iteration count — and reports median / min / max to
//! stdout. No statistical regression analysis, plots, or saved baselines;
//! compare medians across runs by hand or with `scripts/` tooling.
//!
//! See `vendor/README.md` for why these stubs exist.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored; present for
    /// source compatibility with upstream `criterion_main!` expansions).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 10,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup cost (accepted for source
/// compatibility; the vendored driver always times per-batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, adapting the inner iteration count so each sample
    /// spans at least ~1 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let once = Instant::now();
        black_box(routine());
        let est = once.elapsed();
        let inner = iters_for(est);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / inner);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn iters_for(est: Duration) -> u32 {
    if est >= Duration::from_millis(1) {
        1
    } else {
        let est_nanos = est.as_nanos().max(1);
        ((1_000_000 / est_nanos) as u32).clamp(1, 10_000)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {id}: no samples");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    println!(
        "bench {id}: median {median:?} (min {:?}, max {:?}, {} samples)",
        sorted[0],
        sorted[sorted.len() - 1],
        sorted.len()
    );
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
