//! Minimal offline drop-in for the subset of `proptest` this workspace uses.
//!
//! Random-input testing without shrinking: `proptest! { fn f(x in strat) }`
//! expands to a `#[test]` that samples each strategy deterministically
//! (seeded from the test path and case index) and runs the body. Supported
//! strategy combinators: ranges, `Just`, `any`, `prop_map`, `prop_oneof!`
//! (weighted or plain), tuples up to 10 elements, and `collection::vec`.
//! Failures panic immediately and print the failing case number; re-running
//! reproduces it exactly.
//!
//! See `vendor/README.md` for why these stubs exist.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Everything tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    pub use crate as prop;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{LenRange, Strategy, TestRng};

    /// Strategy producing vectors whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_excl: usize,
    }

    /// `Vec` strategy with element strategy `element` and length in `len`.
    pub fn vec<S: Strategy, R: LenRange>(element: S, len: R) -> VecStrategy<S> {
        let (min_len, max_len_excl) = len.bounds();
        assert!(max_len_excl > min_len, "empty vec length range");
        VecStrategy {
            element,
            min_len,
            max_len_excl,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.min_len as u64, self.max_len_excl as u64) as usize;
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Length ranges accepted by [`collection::vec`].
pub trait LenRange {
    /// `(min, max_exclusive)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl LenRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl LenRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

impl LenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

/// Per-block configuration, mirroring `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases after applying the `PROPTEST_CASES` env override (a hard cap,
    /// letting slow machines or quick CI runs dial everything down at once).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

/// Deterministic per-test RNG (SplitMix64 over a path+case hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the test path and case index.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + (((self.next_u64() as u128).wrapping_mul((hi - lo) as u128)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Numeric types samplable from ranges and via [`any`].
pub trait SampleValue: Sized + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn in_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self;

    /// Successor, for inclusive upper bounds.
    fn successor(self) -> Self;

    /// Draw from the full type domain.
    fn full(rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_value_int {
    ($($t:ty),*) => {$(
        impl SampleValue for $t {
            fn in_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "empty strategy range");
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + draw as i128) as $t
            }

            fn successor(self) -> Self {
                self + 1
            }

            fn full(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleValue for f64 {
    fn in_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        lo + rng.unit_f64() * (hi - lo)
    }

    fn successor(self) -> Self {
        self
    }

    fn full(rng: &mut TestRng) -> Self {
        // Bounded rather than bit-pattern random: tests here use any::<f64>()
        // (if at all) for ordinary magnitudes, not NaN fuzzing.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl SampleValue for bool {
    fn in_range(rng: &mut TestRng, _lo: Self, _hi: Self) -> Self {
        rng.next_u64() & 1 == 1
    }

    fn successor(self) -> Self {
        self
    }

    fn full(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: SampleValue + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::in_range(rng, self.start, self.end)
    }
}

impl<T: SampleValue + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::in_range(rng, *self.start(), self.end().successor())
    }
}

/// Full-domain strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy over the whole domain of `T`.
pub fn any<T: SampleValue>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: SampleValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::full(rng)
    }
}

/// Type-erased strategy, used by [`prop_oneof!`] to mix arm types.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

/// Erases a strategy's type.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy {
        sample: Rc::new(move |rng| strategy.sample_value(rng)),
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Weighted union of strategies, the engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(0, total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.sample_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+ ))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// A failed or rejected test case, mirroring `proptest::test_runner`'s
/// error type closely enough for bodies that thread it through `?`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A hard failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// A rejected input (treated as a failure here; the vendored runner
    /// does not resample).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The test-definition macro. Expands each `fn name(x in strat, y: Type) ..`
/// into a `#[test]` running `cases` deterministic samples; bodies may use
/// `?` on [`TestCaseResult`]s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: splits the block into functions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $crate::__proptest_case! {
                @munch ($cfg) $(#[$meta])* fn $name [] ($($params)*) $body
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: munches one parameter at a time,
/// accepting both `pat in strategy` and `ident: Type` (sugar for
/// `ident in any::<Type>()`), then emits the `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (@munch $cfgp:tt $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($pat:pat in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! {
            @munch $cfgp $(#[$meta])* fn $name [$($acc)* {$pat, $strat}] ($($rest)*) $body
        }
    };
    (@munch $cfgp:tt $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($pat:pat in $strat:expr) $body:block) => {
        $crate::__proptest_case! {
            @munch $cfgp $(#[$meta])* fn $name [$($acc)* {$pat, $strat}] () $body
        }
    };
    (@munch $cfgp:tt $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($id:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! {
            @munch $cfgp $(#[$meta])* fn $name [$($acc)* {$id, $crate::any::<$ty>()}] ($($rest)*) $body
        }
    };
    (@munch $cfgp:tt $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($id:ident : $ty:ty) $body:block) => {
        $crate::__proptest_case! {
            @munch $cfgp $(#[$meta])* fn $name [$($acc)* {$id, $crate::any::<$ty>()}] () $body
        }
    };
    (@munch ($cfg:expr) $(#[$meta:meta])* fn $name:ident
        [$({$pat:pat, $strat:expr})*] () $body:block) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __guard = $crate::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                };
                $(let $pat = $crate::Strategy::sample_value(&($strat), &mut __rng);)*
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!("property failed: {__e}");
                }
                ::core::mem::forget(__guard);
            }
        }
    };
}

/// Prints which case failed when a test body panics (no shrinking; the RNG
/// is deterministic, so the case number is the reproduction recipe).
#[doc(hidden)]
pub struct CaseReporter {
    /// Test name.
    pub test: &'static str,
    /// Case index.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest (vendored): `{}` failed on deterministic case {}",
                self.test, self.case
            );
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted or plain choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_sampling() {
        let strat = (0u64..100, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::for_case("x", 3);
        let mut r2 = crate::TestRng::for_case("x", 3);
        assert_eq!(
            crate::Strategy::sample_value(&strat, &mut r1).0,
            crate::Strategy::sample_value(&strat, &mut r2).0
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: ranges, oneof, vec, map.
        fn macro_pipeline(
            x in 1usize..10,
            choice in prop_oneof![1 => Just(0u8), 1 => Just(1u8), 2 => Just(2u8)],
            xs in prop::collection::vec(any::<u64>(), 1..4),
        ) {
            prop_assert!(x >= 1 && x < 10);
            prop_assert!(choice <= 2);
            prop_assert!(!xs.is_empty() && xs.len() < 4);
        }
    }
}
