//! Minimal offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`, `from_seed`), `rngs::SmallRng` (xoshiro256++ seeded via
//! SplitMix64), and `seq::SliceRandom` (`shuffle`, `choose`). Deterministic
//! across platforms; stream values differ from upstream `rand`, which is fine
//! for this repo because every consumer seeds explicitly and asserts
//! statistical or reproducibility properties, never exact upstream sequences.
//!
//! See `vendor/README.md` for why these stubs exist.

use std::ops::{Bound, RangeBounds};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (stand-in for `Standard: Distribution`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's obligation.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The successor value, for inclusive upper bounds.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                debug_assert!(span > 0, "empty gen_range");
                // Multiply-shift keeps the draw unbiased enough for simulation
                // use and avoids modulo clustering on small spans.
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + draw as i128) as $t
            }

            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }

    fn successor(self) -> Self {
        self
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::from_rng(rng) * (hi - lo)
    }

    fn successor(self) -> Self {
        self
    }
}

/// User-facing random-value methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.successor(),
            Bound::Unbounded => panic!("gen_range requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.successor(),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => panic!("gen_range requires an upper bound"),
        };
        T::sample_half_open(self, lo, hi)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which xoshiro never leaves.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&j));
            let x = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_cover_support() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
