//! Content → JSON text.

use serde::Content;

/// Renders `content`; `indent = None` is compact, `Some(level)` pretty.
pub fn render(content: &Content, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, content, indent);
    out
}

fn write_value(out: &mut String, content: &Content, indent: Option<usize>) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => write_seq(out, items, indent),
        Content::Map(entries) => write_map(out, entries, indent),
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Upstream serde_json refuses non-finite floats; rendering null keeps
        // dumps usable and matches what `nullable_f64` produces anyway.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep a decimal point so floats stay floats on re-parse.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_seq(out: &mut String, items: &[Content], indent: Option<usize>) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = indent {
            newline_indent(out, level + 1);
            write_value(out, item, Some(level + 1));
        } else {
            write_value(out, item, None);
        }
    }
    if let Some(level) = indent {
        newline_indent(out, level);
    }
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Content)], indent: Option<usize>) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = indent {
            newline_indent(out, level + 1);
            write_escaped(out, k);
            out.push_str(": ");
            write_value(out, v, Some(level + 1));
        } else {
            write_escaped(out, k);
            out.push(':');
            write_value(out, v, None);
        }
    }
    if let Some(level) = indent {
        newline_indent(out, level);
    }
    out.push('}');
}
