//! Minimal offline drop-in for the subset of `serde_json` this workspace
//! uses: `to_string`, `to_string_pretty`, `to_writer`, `from_str`,
//! `to_value`, `Value`, and a flat-object `json!` macro.
//!
//! `Value` is the vendored serde's [`Content`] tree, so conversions between
//! typed values and JSON text all meet in one representation. Non-finite
//! floats render as `null` (upstream serde_json errors instead; this repo
//! routes them through `nullable_f64` anyway).
//!
//! See `vendor/README.md` for why these stubs exist.

use serde::{Content, ContentSerializer, Deserialize, Serialize};

mod parse;
mod render;

/// A parsed JSON value.
pub type Value = Content;

/// Error raised by JSON parsing or (never, in practice) serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value
        .serialize(ContentSerializer)
        .map_err(|e| Error(e.to_string()))?;
    Ok(render::render(&content, None))
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value
        .serialize(ContentSerializer)
        .map_err(|e| Error(e.to_string()))?;
    Ok(render::render(&content, Some(0)))
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

/// Serializes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

/// Parses a typed value from JSON text.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let content = parse::parse(s)?;
    T::deserialize(serde::ContentDeserializer::<Error>::new(content))
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a typed value from JSON bytes.
pub fn from_slice<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Lowers any serializable value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value
        .serialize(ContentSerializer)
        .map_err(|e| Error(e.to_string()))
}

/// Lifts a typed value out of a [`Value`].
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(serde::ContentDeserializer::<Error>::new(value))
}

/// Builds a [`Value`] from a flat object/array literal. Values are arbitrary
/// serializable expressions; nest by building inner values first (the
/// vendored macro does not recurse into brace literals).
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $(($key.to_string(), $crate::to_value(&$value).unwrap())),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![
            $($crate::to_value(&$value).unwrap()),*
        ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n\"there\"").unwrap(), "\"hi\\n\\\"there\\\"\"");
        let v: f64 = from_str("2.25").unwrap();
        assert_eq!(v, 2.25);
        let s: String = from_str("\"a\\u0041b\"").unwrap();
        assert_eq!(s, "aAb");
    }

    #[test]
    fn containers_roundtrip() {
        let xs = vec![1u64, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn json_macro_builds_objects() {
        let inner = vec![1u64, 2];
        let v = json!({ "a": 1u64, "xs": inner, "s": "txt" });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"a\":1,\"xs\":[1,2],\"s\":\"txt\"}"
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1u64 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
