//! JSON text → Content.

use serde::Content;

use crate::Error;

/// Parses one JSON document, requiring it to consume the whole input.
pub fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if !(self.bump() == Some(b'\\') && self.bump() == Some(b'u')) {
                                return Err(Error("lone high surrogate".into()));
                            }
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined).ok_or_else(|| {
                                Error("invalid surrogate pair".into())
                            })?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u escape".into()))?
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(Error(format!(
                            "invalid escape {:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 multibyte sequence beginning at b.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error("truncated \\u".into()))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error("bad hex digit in \\u".into()))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
