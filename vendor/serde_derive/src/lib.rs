//! Vendored `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! Implemented directly on `proc_macro::TokenTree` (no `syn`/`quote`, which
//! are unavailable offline). Supports the shapes this workspace uses:
//! non-generic named structs, tuple structs, unit structs, and enums with
//! unit/newtype/tuple/struct variants, plus the field attributes
//! `#[serde(with = "path")]`, `#[serde(default)]`,
//! `#[serde(default = "path")]`, and
//! `#[serde(skip_serializing_if = "path")]` (named struct fields only).
//!
//! See `vendor/README.md` for why these stubs exist.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    ty: String,
    with: Option<String>,
    default: Option<DefaultAttr>,
    skip_if: Option<String>,
}

enum DefaultAttr {
    Std,
    Path(String),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }

    /// Consumes attributes; returns serde field attributes found among them.
    fn eat_attrs(&mut self) -> (Option<String>, Option<DefaultAttr>, Option<String>) {
        let mut with = None;
        let mut default = None;
        let mut skip_if = None;
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if inner.eat_ident("serde") {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            parse_serde_args(args.stream(), &mut with, &mut default, &mut skip_if);
                        }
                    }
                }
                other => panic!("serde derive: expected [attr], got {other:?}"),
            }
        }
        (with, default, skip_if)
    }

    /// Consumes `pub`, `pub(...)` if present.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }
}

fn parse_serde_args(
    stream: TokenStream,
    with: &mut Option<String>,
    default: &mut Option<DefaultAttr>,
    skip_if: &mut Option<String>,
) {
    let mut c = Cursor::new(stream);
    while !c.at_end() {
        let key = c.expect_ident("serde attribute name");
        match key.as_str() {
            "with" => {
                assert!(c.eat_punct('='), "serde derive: with needs = \"path\"");
                *with = Some(expect_str_literal(&mut c));
            }
            "default" => {
                if c.eat_punct('=') {
                    *default = Some(DefaultAttr::Path(expect_str_literal(&mut c)));
                } else {
                    *default = Some(DefaultAttr::Std);
                }
            }
            "skip_serializing_if" => {
                assert!(
                    c.eat_punct('='),
                    "serde derive: skip_serializing_if needs = \"path\""
                );
                *skip_if = Some(expect_str_literal(&mut c));
            }
            other => panic!("serde derive: unsupported serde attribute `{other}`"),
        }
        c.eat_punct(',');
    }
}

fn expect_str_literal(c: &mut Cursor) -> String {
    match c.next() {
        Some(TokenTree::Literal(l)) => {
            let s = l.to_string();
            let trimmed = s.trim_matches('"');
            assert!(
                s.starts_with('"') && s.ends_with('"'),
                "serde derive: expected string literal, got {s}"
            );
            trimmed.to_owned()
        }
        other => panic!("serde derive: expected string literal, got {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();
    if c.eat_ident("struct") {
        let name = c.expect_ident("struct name");
        forbid_generics(&c, &name);
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: Kind::UnitStruct,
            },
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else if c.eat_ident("enum") {
        let name = c.expect_ident("enum name");
        forbid_generics(&c, &name);
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde derive: unexpected enum body {other:?}"),
        }
    } else {
        panic!("serde derive: only structs and enums are supported");
    }
}

fn forbid_generics(c: &Cursor, name: &str) {
    if let Some(TokenTree::Punct(p)) = c.peek() {
        assert!(
            p.as_char() != '<',
            "serde derive: generic type `{name}` is not supported by the vendored derive"
        );
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let (with, default, skip_if) = c.eat_attrs();
        if c.at_end() {
            break;
        }
        c.eat_visibility();
        let name = c.expect_ident("field name");
        assert!(c.eat_punct(':'), "serde derive: expected : after field `{name}`");
        let mut ty = String::new();
        let mut angle_depth = 0i32;
        while let Some(tok) = c.peek() {
            if angle_depth == 0 {
                if let TokenTree::Punct(p) = tok {
                    if p.as_char() == ',' {
                        c.next();
                        break;
                    }
                }
            }
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    _ => {}
                }
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&c.next().unwrap().to_string());
        }
        fields.push(Field {
            name,
            ty,
            with,
            default,
            skip_if,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    while let Some(tok) = c.next() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if saw_tokens {
                        count += 1;
                    }
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.eat_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                Shape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                if n == 1 {
                    Shape::Newtype
                } else {
                    Shape::Tuple(n)
                }
            }
            _ => Shape::Unit,
        };
        // Explicit discriminants (`= expr`) are irrelevant to serde's
        // externally tagged encoding; skip to the separating comma.
        if c.eat_punct('=') {
            while let Some(tok) = c.peek() {
                if let TokenTree::Punct(p) = tok {
                    if p.as_char() == ',' {
                        break;
                    }
                }
                c.next();
            }
        }
        c.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            body.push_str(&format!(
                "#[allow(unused_mut)] let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            ));
            for f in fields {
                body.push_str(&gen_serialize_field(&f.name, &format!("&self.{}", f.name), f));
            }
            body.push_str("::serde::ser::SerializeStruct::end(__state)\n");
        }
        Kind::TupleStruct(1) => {
            body.push_str(&format!(
                "::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n"
            ));
        }
        Kind::TupleStruct(n) => {
            body.push_str(&format!(
                "let mut __seq = ::serde::ser::Serializer::serialize_tuple(__serializer, {n})?;\n"
            ));
            for i in 0..*n {
                body.push_str(&format!(
                    "::serde::ser::SerializeSeq::serialize_element(&mut __seq, &self.{i})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeSeq::end(__seq)\n");
        }
        Kind::UnitStruct => {
            body.push_str(&format!(
                "::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n"
            ));
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => body.push_str(&format!(
                        "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Shape::Newtype => body.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", &({})),\n",
                            binders.join(", "),
                            binders.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n#[allow(unused_mut)] let mut __state = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            binders.join(", "),
                            fields.len()
                        ));
                        for f in fields {
                            assert!(
                                f.with.is_none() && f.skip_if.is_none(),
                                "serde derive: with/skip attributes on enum variant fields are unsupported"
                            );
                            body.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{0}\", {0})?;\n",
                                f.name
                            ));
                        }
                        body.push_str("::serde::ser::SerializeStructVariant::end(__state)\n},\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

fn gen_serialize_field(key: &str, value_expr: &str, f: &Field) -> String {
    let write = match &f.with {
        None => format!(
            "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{key}\", {value_expr})?;\n"
        ),
        Some(path) => format!(
            "{{\nstruct __With<'__a>(&'__a {ty});\n\
             impl<'__a> ::serde::ser::Serialize for __With<'__a> {{\n\
             fn serialize<__S2: ::serde::ser::Serializer>(&self, __s2: __S2) -> ::core::result::Result<__S2::Ok, __S2::Error> {{ {path}::serialize(self.0, __s2) }}\n\
             }}\n\
             ::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{key}\", &__With({value_expr}))?;\n}}\n",
            ty = f.ty,
        ),
    };
    match &f.skip_if {
        // The serializer takes the struct len as a capacity hint only, so
        // skipping a field needs no len adjustment.
        Some(path) => format!("if !{path}({value_expr}) {{\n{write}}}\n"),
        None => write,
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// `let` staging + merge loop + construction for a list of named fields.
/// `ctor` is e.g. `Foo` or `Foo::Variant`; `source` is the expression holding
/// `Vec<(String, Content)>` entries.
fn gen_named_fields_deserialize(ctor: &str, type_label: &str, fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "let mut __field_{}: ::core::option::Option<_> = ::core::option::Option::None;\n",
            f.name
        ));
    }
    out.push_str(&format!("for (__k, __v) in {source} {{\nmatch __k.as_str() {{\n"));
    for f in fields {
        let expr = match &f.with {
            None => "::serde::de::Deserialize::deserialize(::serde::de::ContentDeserializer::<__D::Error>::new(__v))?".to_owned(),
            Some(path) => format!(
                "{path}::deserialize(::serde::de::ContentDeserializer::<__D::Error>::new(__v))?"
            ),
        };
        out.push_str(&format!(
            "\"{0}\" => {{ __field_{0} = ::core::option::Option::Some({expr}); }}\n",
            f.name
        ));
    }
    out.push_str("_ => {}\n}\n}\n");
    out.push_str(&format!("::core::result::Result::Ok({ctor} {{\n"));
    for f in fields {
        let missing = match &f.default {
            None => format!(
                "return ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\"missing field `{}` in {type_label}\"))",
                f.name
            ),
            Some(DefaultAttr::Std) => "::core::default::Default::default()".to_owned(),
            Some(DefaultAttr::Path(path)) => format!("{path}()"),
        };
        out.push_str(&format!(
            "{0}: match __field_{0} {{ ::core::option::Option::Some(__v) => __v, ::core::option::Option::None => {missing} }},\n",
            f.name
        ));
    }
    out.push_str("})\n");
    out
}

fn deser_content_expr(content_expr: &str) -> String {
    format!(
        "::serde::de::Deserialize::deserialize(::serde::de::ContentDeserializer::<__D::Error>::new({content_expr}))?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    body.push_str("let __content = ::serde::de::Deserializer::content(__deserializer)?;\n");
    match &item.kind {
        Kind::NamedStruct(fields) => {
            body.push_str(&format!(
                "let __entries = match __content {{\n::serde::Content::Map(__m) => __m,\n__other => return ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"expected map for {name}, got {{:?}}\", __other))),\n}};\n"
            ));
            body.push_str(&gen_named_fields_deserialize(name, name, fields, "__entries"));
        }
        Kind::TupleStruct(1) => {
            body.push_str(&format!(
                "::core::result::Result::Ok({name}({}))\n",
                deser_content_expr("__content")
            ));
        }
        Kind::TupleStruct(n) => {
            body.push_str(&format!(
                "let __items = match __content {{\n::serde::Content::Seq(__s) if __s.len() == {n} => __s,\n__other => return ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"expected {n}-element sequence for {name}, got {{:?}}\", __other))),\n}};\nlet mut __it = __items.into_iter();\n"
            ));
            let elems: Vec<String> = (0..*n)
                .map(|_| deser_content_expr("__it.next().unwrap()"))
                .collect();
            body.push_str(&format!(
                "::core::result::Result::Ok({name}({}))\n",
                elems.join(", ")
            ));
        }
        Kind::UnitStruct => {
            body.push_str(&format!(
                "match __content {{\n::serde::Content::Null => ::core::result::Result::Ok({name}),\n__other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"expected null for {name}, got {{:?}}\", __other))),\n}}\n"
            ));
        }
        Kind::Enum(variants) => {
            body.push_str("match __content {\n");
            body.push_str("::serde::Content::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    body.push_str(&format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            body.push_str(&format!(
                "__other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"unknown {name} variant {{__other}}\"))),\n}},\n"
            ));
            body.push_str("::serde::Content::Map(__m) if __m.len() == 1 => {\nlet (__k, __v) = __m.into_iter().next().unwrap();\nmatch __k.as_str() {\n");
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Newtype => {
                        body.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}({})),\n",
                            deser_content_expr("__v")
                        ));
                    }
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| deser_content_expr("__it.next().unwrap()"))
                            .collect();
                        body.push_str(&format!(
                            "\"{vname}\" => {{\nlet __items = match __v {{\n::serde::Content::Seq(__s) if __s.len() == {n} => __s,\n__other => return ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"expected {n}-element sequence for {name}::{vname}, got {{:?}}\", __other))),\n}};\nlet mut __it = __items.into_iter();\n::core::result::Result::Ok({name}::{vname}({}))\n}},\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        body.push_str(&format!(
                            "\"{vname}\" => {{\nlet __entries = match __v {{\n::serde::Content::Map(__m2) => __m2,\n__other => return ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"expected map for {name}::{vname}, got {{:?}}\", __other))),\n}};\n{}\n}},\n",
                            gen_named_fields_deserialize(
                                &format!("{name}::{vname}"),
                                &format!("{name}::{vname}"),
                                fields,
                                "__entries"
                            )
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "__other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"unknown {name} variant {{__other}}\"))),\n}}\n}},\n"
            ));
            body.push_str(&format!(
                "__other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"expected {name}, got {{:?}}\", __other))),\n}}\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\nimpl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}
