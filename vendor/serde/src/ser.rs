//! Serialization half of the vendored serde subset.

use std::collections::{BTreeMap, HashMap};

use crate::content::Content;

/// Error type of [`ContentSerializer`]. Lowering to [`Content`] cannot fail;
/// this exists so signatures mirror upstream serde.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerError(pub String);

impl std::fmt::Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serialization error: {}", self.0)
    }
}

impl std::error::Error for SerError {}

/// A serializable value.
pub trait Serialize {
    /// Lowers `self` through `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Sequence builder returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error;

    /// Appends one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map builder returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error;

    /// Appends one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;

    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct builder returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error;

    /// Appends one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant builder returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error;

    /// Appends one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A serialization backend. Only [`ContentSerializer`] implements this in the
/// vendored stack, but hand-written `Serialize` impls and `with`-modules are
/// generic over it, exactly as with upstream serde.
pub trait Serializer: Sized {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error;
    /// Sequence builder.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Map builder.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct builder.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant builder.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)` transparently.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct transparently.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant (externally tagged).
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple (serialized as a sequence).
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant (externally tagged).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// The vendored backend: lowers values to a [`Content`] tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentSerializer;

/// Renders a key content for use as a JSON object key.
fn key_string(content: Content) -> String {
    match content {
        Content::Str(s) => s,
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        Content::F64(v) => v.to_string(),
        other => panic!("unsupported map key content: {other:?}"),
    }
}

/// Sequence builder for [`ContentSerializer`].
pub struct ContentSeq(Vec<Content>);

impl SerializeSeq for ContentSeq {
    type Ok = Content;
    type Error = SerError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), SerError> {
        self.0.push(value.serialize(ContentSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Content, SerError> {
        Ok(Content::Seq(self.0))
    }
}

/// Map builder for [`ContentSerializer`].
pub struct ContentMap(Vec<(String, Content)>);

impl SerializeMap for ContentMap {
    type Ok = Content;
    type Error = SerError;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), SerError> {
        let k = key_string(key.serialize(ContentSerializer)?);
        self.0.push((k, value.serialize(ContentSerializer)?));
        Ok(())
    }

    fn end(self) -> Result<Content, SerError> {
        Ok(Content::Map(self.0))
    }
}

/// Struct builder for [`ContentSerializer`].
pub struct ContentStruct(Vec<(String, Content)>);

impl SerializeStruct for ContentStruct {
    type Ok = Content;
    type Error = SerError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        self.0
            .push((name.to_owned(), value.serialize(ContentSerializer)?));
        Ok(())
    }

    fn end(self) -> Result<Content, SerError> {
        Ok(Content::Map(self.0))
    }
}

/// Struct-variant builder for [`ContentSerializer`].
pub struct ContentStructVariant {
    variant: &'static str,
    fields: Vec<(String, Content)>,
}

impl SerializeStructVariant for ContentStructVariant {
    type Ok = Content;
    type Error = SerError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        self.fields
            .push((name.to_owned(), value.serialize(ContentSerializer)?));
        Ok(())
    }

    fn end(self) -> Result<Content, SerError> {
        Ok(Content::Map(vec![(
            self.variant.to_owned(),
            Content::Map(self.fields),
        )]))
    }
}

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = SerError;
    type SerializeSeq = ContentSeq;
    type SerializeMap = ContentMap;
    type SerializeStruct = ContentStruct;
    type SerializeStructVariant = ContentStructVariant;

    fn serialize_bool(self, v: bool) -> Result<Content, SerError> {
        Ok(Content::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Content, SerError> {
        if v >= 0 {
            Ok(Content::U64(v as u64))
        } else {
            Ok(Content::I64(v))
        }
    }

    fn serialize_u64(self, v: u64) -> Result<Content, SerError> {
        Ok(Content::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Content, SerError> {
        Ok(Content::F64(v))
    }

    fn serialize_str(self, v: &str) -> Result<Content, SerError> {
        Ok(Content::Str(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Content, SerError> {
        Ok(Content::Null)
    }

    fn serialize_none(self) -> Result<Content, SerError> {
        Ok(Content::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Content, SerError> {
        value.serialize(self)
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<Content, SerError> {
        Ok(Content::Null)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Content, SerError> {
        Ok(Content::Str(variant.to_owned()))
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Content, SerError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, SerError> {
        Ok(Content::Map(vec![(
            variant.to_owned(),
            value.serialize(ContentSerializer)?,
        )]))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ContentSeq, SerError> {
        Ok(ContentSeq(Vec::with_capacity(len.unwrap_or(0))))
    }

    fn serialize_tuple(self, len: usize) -> Result<ContentSeq, SerError> {
        Ok(ContentSeq(Vec::with_capacity(len)))
    }

    fn serialize_map(self, len: Option<usize>) -> Result<ContentMap, SerError> {
        Ok(ContentMap(Vec::with_capacity(len.unwrap_or(0))))
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ContentStruct, SerError> {
        Ok(ContentStruct(Vec::with_capacity(len)))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ContentStructVariant, SerError> {
        Ok(ContentStructVariant {
            variant,
            fields: Vec::with_capacity(len),
        })
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_tuple(2)?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_tuple(3)?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.serialize_element(&self.2)?;
        seq.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Content::Null => serializer.serialize_none(),
            Content::Bool(b) => serializer.serialize_bool(*b),
            Content::U64(v) => serializer.serialize_u64(*v),
            Content::I64(v) => serializer.serialize_i64(*v),
            Content::F64(v) => serializer.serialize_f64(*v),
            Content::Str(s) => serializer.serialize_str(s),
            Content::Seq(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Content::Map(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}
