//! Minimal offline drop-in for the subset of `serde` this workspace uses.
//!
//! The design is value-centric: serialization lowers every value to a
//! [`Content`] tree through a `Serializer` trait that mirrors the upstream
//! method surface closely enough for this repo's hand-written impls
//! (`dup_stats::nullable_f64`), and deserialization lifts values back out of
//! a `Content` tree. `serde_derive` (also vendored) generates impls against
//! exactly this surface, and `serde_json` (also vendored) renders and parses
//! `Content`.
//!
//! See `vendor/README.md` for why these stubs exist.

pub use serde_derive::{Deserialize, Serialize};

mod content;
pub mod de;
pub mod ser;

pub use content::Content;
pub use de::{ContentDeserializer, Deserialize, Deserializer};
pub use ser::{
    ContentSerializer, Serialize, SerializeMap, SerializeSeq, SerializeStruct,
    SerializeStructVariant, Serializer,
};

/// Lowers any serializable value to a [`Content`] tree.
///
/// Infallible for the vendored serializer; the `Result` keeps call sites
/// source-compatible with fallible upstream serializers.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ser::SerError> {
    value.serialize(ContentSerializer)
}
