//! The value tree every serializable type lowers to.

/// A self-describing value, the meeting point between serialization and
/// deserialization in the vendored serde stack. JSON-shaped: maps have
/// string keys (numeric/bool keys are stringified on the way in).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `None` and non-finite floats via `nullable_f64`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entry for `key` in a map, if present.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrows the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Non-negative integer payload (accepts stringified keys and exact
    /// floats, which appear when maps round-trip through JSON).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) => u64::try_from(*v).ok(),
            Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            Content::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Signed integer payload, with the same coercions as [`Self::as_u64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) => i64::try_from(*v).ok(),
            Content::F64(v) if v.fract() == 0.0 => Some(*v as i64),
            Content::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the array payload.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Whether this is an object (map).
    pub fn is_object(&self) -> bool {
        matches!(self, Content::Map(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Content::Seq(_))
    }
}

impl std::fmt::Display for Content {
    /// Compact JSON rendering, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Content::Null => f.write_str("null"),
            Content::Bool(b) => write!(f, "{b}"),
            Content::U64(v) => write!(f, "{v}"),
            Content::I64(v) => write!(f, "{v}"),
            Content::F64(v) if !v.is_finite() => f.write_str("null"),
            Content::F64(v) if v.fract() == 0.0 && v.abs() < 1e15 => write!(f, "{v:.1}"),
            Content::F64(v) => write!(f, "{v}"),
            Content::Str(s) => write!(f, "{s:?}"),
            Content::Seq(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Content::Map(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

const NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;

    /// Map lookup; yields `Null` for missing keys or non-map receivers,
    /// matching `serde_json::Value` indexing.
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    /// Array lookup; yields `Null` when out of bounds or not an array.
    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
