//! Deserialization half of the vendored serde subset.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use crate::content::Content;

/// Error construction interface, mirroring `serde::de::Error`.
pub trait Error: Sized {
    /// Builds an error from a message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A deserialization backend. The vendored model is value-based: a backend
/// yields one [`Content`] tree and typed impls lift values out of it.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes the backend, yielding its content tree.
    fn content(self) -> Result<Content, Self::Error>;
}

/// A deserializable value.
pub trait Deserialize<'de>: Sized {
    /// Lifts a value out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input, mirroring
/// `serde::de::DeserializeOwned`. The vendored stack is value-based, so
/// every `Deserialize` impl qualifies; the alias exists for bound parity
/// with upstream call sites.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Backend over an in-memory [`Content`] tree, generic in the error type so
/// derived impls can nest it under any outer backend.
pub struct ContentDeserializer<E> {
    content: Content,
    _marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.content()?;
                let v = c
                    .as_u64()
                    .ok_or_else(|| D::Error::custom(format_args!(
                        "expected {}, got {c:?}", stringify!($t)
                    )))?;
                <$t>::try_from(v).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.content()?;
                let v = c
                    .as_i64()
                    .ok_or_else(|| D::Error::custom(format_args!(
                        "expected {}, got {c:?}", stringify!($t)
                    )))?;
                <$t>::try_from(v).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.content()?;
        c.as_f64()
            .ok_or_else(|| D::Error::custom(format_args!("expected f64, got {c:?}")))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.content()?;
        c.as_bool()
            .ok_or_else(|| D::Error::custom(format_args!("expected bool, got {c:?}")))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Str(s) => Ok(s),
            other => Err(D::Error::custom(format_args!(
                "expected string, got {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Null => Ok(()),
            other => Err(D::Error::custom(format_args!(
                "expected null, got {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Null => Ok(None),
            other => T::deserialize(ContentDeserializer::<D::Error>::new(other)).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|item| T::deserialize(ContentDeserializer::<D::Error>::new(item)))
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        <[T; N]>::try_from(items).map_err(|_| {
            D::Error::custom(format_args!("expected {N}-element sequence, got {len}"))
        })
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = A::deserialize(ContentDeserializer::<D::Error>::new(it.next().unwrap()))?;
                let b = B::deserialize(ContentDeserializer::<D::Error>::new(it.next().unwrap()))?;
                Ok((a, b))
            }
            other => Err(D::Error::custom(format_args!(
                "expected 2-element sequence, got {other:?}"
            ))),
        }
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        map_entries::<D, K, V>(deserializer)?.collect()
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        map_entries::<D, K, V>(deserializer)?.collect()
    }
}

/// Shared map-entry decoding: keys arrive as strings and are re-lifted
/// through `Content::Str`, which numeric key types coerce from.
#[allow(clippy::type_complexity)]
fn map_entries<'de, D, K, V>(
    deserializer: D,
) -> Result<std::vec::IntoIter<Result<(K, V), D::Error>>, D::Error>
where
    D: Deserializer<'de>,
    K: Deserialize<'de>,
    V: Deserialize<'de>,
{
    match deserializer.content()? {
        Content::Map(entries) => Ok(entries
            .into_iter()
            .map(|(k, v)| {
                let key = K::deserialize(ContentDeserializer::<D::Error>::new(Content::Str(k)))?;
                let value = V::deserialize(ContentDeserializer::<D::Error>::new(v))?;
                Ok((key, value))
            })
            .collect::<Vec<_>>()
            .into_iter()),
        other => Err(D::Error::custom(format_args!(
            "expected map, got {other:?}"
        ))),
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.content()
    }
}
