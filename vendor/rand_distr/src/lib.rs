//! Minimal offline drop-in for the subset of `rand_distr` this workspace
//! could reach for. The workspace currently implements its own variates
//! (see `crates/workload/src/variates.rs`), so only a couple of common
//! distributions are provided for dev use.
//!
//! See `vendor/README.md` for why these stubs exist.

use rand::RngCore;

/// Sampling interface mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Normal distribution via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistError;

impl Normal {
    /// Builds a normal distribution; `std_dev` must be non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if std_dev >= 0.0 {
            Ok(Normal { mean, std_dev })
        } else {
            Err(DistError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        use rand::Rng;
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Builds an exponential distribution; `lambda` must be positive.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(DistError)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        use rand::Rng;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }
}
