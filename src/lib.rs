//! # dup-p2p
//!
//! A production-quality Rust reproduction of **“DUP: Dynamic-tree Based
//! Update Propagation in Peer-to-Peer Networks”** (Yin & Cao, ICDE 2005):
//! the DUP cache-consistency scheme, its PCX and CUP baselines, every
//! substrate the paper depends on (a deterministic discrete-event simulator,
//! a structured-overlay layer with both the paper's synthetic index search
//! trees and a real Chord DHT, the paper's workload model), and a harness
//! that regenerates every table and figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! name and offers a small high-level API for the common case of comparing
//! the three schemes on one configuration.
//!
//! ## Quick start
//!
//! ```
//! use dup_p2p::prelude::*;
//!
//! // A scaled-down Table I configuration (512 nodes, paper defaults).
//! let mut cfg = RunConfig::quick(7);
//! cfg.duration_secs = 4_000.0; // keep the doctest fast
//!
//! let results = dup_p2p::compare_schemes(&cfg);
//! assert_eq!(results.dup.scheme, "DUP");
//! // The paper's headline: DUP answers queries in fewer hops than PCX.
//! assert!(results.dup.latency_hops.mean <= results.pcx.latency_hops.mean);
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate | Re-exported as |
//! |-------|-------|----------------|
//! | DES kernel | `dup-sim` | [`sim`] |
//! | statistics | `dup-stats` | [`stats`] |
//! | workload model | `dup-workload` | [`workload`] |
//! | overlay (trees, Chord, churn) | `dup-overlay` | [`overlay`] |
//! | shared protocol + PCX + CUP | `dup-proto` | [`proto`] |
//! | **DUP** (the paper's contribution) | `dup-core` | [`core`] |
//! | experiments (tables/figures) | `dup-harness` | [`harness`] |

#![warn(missing_docs)]

pub use dup_core as core;
pub use dup_dissem as dissem;
pub use dup_harness as harness;
pub use dup_overlay as overlay;
pub use dup_proto as proto;
pub use dup_sim as sim;
pub use dup_stats as stats;
pub use dup_workload as workload;

pub use dup_harness::{run_triple as compare_schemes, Triple};

/// The commonly used types in one import.
pub mod prelude {
    pub use dup_core::{audit_quiescent, run_simulation_kind, DupMsg, DupScheme, SchemeKind};
    pub use dup_overlay::{ChordRing, NodeId, SearchTree, TopologyParams};
    pub use dup_proto::{
        run_simulation, run_simulation_probed, ArrivalKind, CaptureProbe, ChurnConfig, CupScheme,
        InterestPolicy, JsonlProbe, PcxScheme, ProbeConfig, ProbeEvent, ProbeSink, ProtocolConfig,
        RunConfig, RunConfigBuilder, RunReport, StopRule, TopologySource, TraceSample,
    };
    pub use dup_sim::{NoopProbe, Probe, RingProbe, SimDuration, SimTime};
    pub use dup_workload::RankPlacement;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_compare_runs() {
        let mut cfg = RunConfig::quick(1);
        cfg.duration_secs = 4_000.0;
        let t = crate::compare_schemes(&cfg);
        assert_eq!(t.pcx.scheme, "PCX");
        assert_eq!(t.cup.scheme, "CUP");
        assert_eq!(t.dup.scheme, "DUP");
        assert!(t.dup.queries > 0);
    }
}
