//! Quickstart: compare PCX, CUP, and DUP on one configuration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's Table I setup at reduced scale (1024 nodes), runs all
//! three cache-consistency schemes on the *same* topology and workload
//! (same seed → same stochastic streams), and prints the two metrics the
//! paper reports plus the cost breakdown that explains them.

use dup_p2p::prelude::*;

fn main() {
    // Start from the paper's defaults and scale the network down so the
    // example finishes in about a second.
    let cfg = RunConfig::builder(42)
        .nodes(1024)
        .lambda(2.0) // 2 queries/s network-wide
        .warmup_secs(7_200.0) // 2 TTLs of warm-up, excluded from metrics
        .duration_secs(30_000.0) // ~8.5 simulated hours measured
        .build();

    println!(
        "n={} nodes, λ={} q/s, θ={}, c={}, TTL={}s — measuring {}s after {}s warm-up\n",
        cfg.topology.node_count(),
        cfg.lambda,
        cfg.zipf_theta,
        cfg.protocol.threshold_c,
        cfg.protocol.ttl_secs,
        cfg.duration_secs,
        cfg.warmup_secs,
    );

    let t = dup_p2p::compare_schemes(&cfg);

    println!(
        "{:<6} {:>14} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "latency (hops)", "cost (hops)", "req hops", "push hops", "ctrl hops", "stale %"
    );
    for r in [&t.pcx, &t.cup, &t.dup] {
        println!(
            "{:<6} {:>14.4} {:>12.4} {:>10} {:>10} {:>10} {:>9.2}%",
            r.scheme,
            r.latency_hops.mean,
            r.avg_query_cost,
            r.request_hops,
            r.push_hops,
            r.control_hops,
            100.0 * r.stale_fraction,
        );
    }

    println!(
        "\nrelative cost vs PCX:  CUP {:.3}   DUP {:.3}",
        t.rel_cup(),
        t.rel_dup()
    );
    println!(
        "DUP answered {:.1}% of queries from a locally fresh copy ({} nodes interested at end).",
        100.0 * t.dup.local_hit_fraction,
        t.dup.final_interested_nodes
    );
}
