//! A step-by-step replay of the paper's Figure 2 on the protocol API.
//!
//! ```text
//! cargo run --release --example figure2_walkthrough
//! ```
//!
//! Uses the protocol-level test bench (no workload, no routing — just the
//! DUP maintenance protocol) to walk the exact scenario the paper uses to
//! explain DUP: N6 subscribes, then N4, then N6 leaves, printing every
//! node's subscriber list and the push fan-out after each step.

use dup_core::testkit::{paper_example_tree, TestBench};
use dup_p2p::prelude::*;

const NAMES: [&str; 8] = ["N1", "N2", "N3", "N4", "N5", "N6", "N7", "N8"];

fn show(bench: &TestBench<DupScheme>, step: &str) {
    println!("--- {step}");
    for (i, name) in NAMES.iter().enumerate() {
        let node = NodeId(i as u32);
        if !bench.world.tree.is_alive(node) {
            continue;
        }
        let list = bench.scheme.s_list(node);
        if !list.is_empty() {
            let entries: Vec<String> = list
                .iter()
                .map(|e| NAMES[e.index()].to_string())
                .collect();
            println!("  {name}: s_list = [{}]", entries.join(", "));
        }
    }
    let reach: Vec<String> = bench
        .scheme
        .push_set(&bench.world.tree)
        .iter()
        .map(|e| NAMES[e.index()].to_string())
        .collect();
    println!(
        "  push fan-out from N1 reaches: [{}]   (control hops so far: {})\n",
        reach.join(", "),
        bench.control_hops()
    );
    audit_quiescent(&bench.scheme, &bench.world.tree).expect("DUP invariants hold");
}

fn main() {
    // The paper's Figure 1 search tree: N1 is the authority;
    // N1–N2–N3–{N4, N5}; N5–N6–{N7, N8}.
    let mut bench = TestBench::new(paper_example_tree(), DupScheme::new(), 2);
    let (n1, n3, n4, n6) = (NodeId(0), NodeId(2), NodeId(3), NodeId(5));

    println!("Figure 2 of the paper, replayed on the DUP implementation.\n");

    // (a) N6 becomes interested: its subscription travels the search path
    // N6→N5→N3→N2→N1, leaving a virtual path; only N1 and N6 are in the
    // DUP tree, so a push is ONE direct hop.
    bench.make_interested(n6);
    bench.drain();
    show(&bench, "(a) N6 subscribes");
    let before = bench.push_hops();
    bench.refresh();
    println!(
        "  refresh pushed the new version in {} hop(s) — PCX would spend 8 hops\n",
        bench.push_hops() - before
    );

    // (b) N4 becomes interested: N3 catches the converging subscriptions,
    // joins the DUP tree, and substitutes itself for N6 upstream.
    bench.make_interested(n4);
    bench.drain();
    show(&bench, "(b) N4 subscribes; N3 becomes the fan-out point");
    let before = bench.push_hops();
    bench.refresh();
    println!(
        "  refresh pushed N1→N3→{{N4,N6}} in {} hops — CUP would spend 5\n",
        bench.push_hops() - before
    );

    // (c) N6 loses interest: its virtual path clears and the DUP tree
    // collapses back to a single direct edge N1→N4.
    bench.drop_interest(n6);
    bench.drain();
    show(&bench, "(c) N6 unsubscribes; tree collapses to N1→N4");

    assert_eq!(bench.scheme.s_list(n1), &[n4]);
    assert_eq!(bench.scheme.s_list(n3), &[n4]);
    println!("Every intermediate state matched §III of the paper.");
}
