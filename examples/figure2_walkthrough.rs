//! A step-by-step replay of the paper's Figure 2 on the protocol API.
//!
//! ```text
//! cargo run --release --example figure2_walkthrough
//! ```
//!
//! Uses the protocol-level test bench (no workload, no routing — just the
//! DUP maintenance protocol) to walk the exact scenario the paper uses to
//! explain DUP: N6 subscribes, then N4, then N6 leaves, printing every
//! node's subscriber list and the push fan-out after each step. A
//! [`CaptureProbe`] is attached to the bench, so each step also prints the
//! probe event trace — the subscribe flow up the virtual path, and the
//! direct one-hop push that follows.

use dup_core::testkit::{paper_example_tree, TestBench};
use dup_p2p::prelude::*;

const NAMES: [&str; 8] = ["N1", "N2", "N3", "N4", "N5", "N6", "N7", "N8"];

fn name(n: NodeId) -> &'static str {
    NAMES[n.index()]
}

/// Renders one probe event as a trace line (`None` for event types this
/// walkthrough doesn't narrate).
fn fmt_event(ev: &ProbeEvent) -> Option<String> {
    use dup_p2p::proto::MsgClass;
    Some(match ev {
        ProbeEvent::Subscribe { node, subject } => {
            format!("subscribe({}) processed at {}", name(*subject), name(*node))
        }
        ProbeEvent::Unsubscribe { node, subject } => {
            format!(
                "unsubscribe({}) processed at {}",
                name(*subject),
                name(*node)
            )
        }
        ProbeEvent::Substitute { node, old, new } => {
            format!(
                "substitute({} → {}) sent upstream by {}",
                name(*old),
                name(*new),
                name(*node)
            )
        }
        ProbeEvent::MsgDelivered {
            from, to, class, ..
        } => match class {
            MsgClass::Push => format!(
                "push delivered {} → {} (direct hop)",
                name(*from),
                name(*to)
            ),
            MsgClass::Control => format!("control hop {} → {}", name(*from), name(*to)),
            _ => return None,
        },
        ProbeEvent::CacheInsert { node, .. } => {
            format!("fresh copy installed at {}", name(*node))
        }
        _ => return None,
    })
}

/// Prints every probe event captured since the last call.
fn show_trace(capture: &CaptureProbe, cursor: &mut usize) {
    let events = capture.events();
    for (_, ev) in &events[*cursor..] {
        if let Some(line) = fmt_event(ev) {
            println!("    trace: {line}");
        }
    }
    *cursor = events.len();
}

fn show(bench: &TestBench<DupScheme>, step: &str) {
    println!("--- {step}");
    for (i, name) in NAMES.iter().enumerate() {
        let node = NodeId(i as u32);
        if !bench.world.tree.is_alive(node) {
            continue;
        }
        let list = bench.scheme.s_list(node);
        if !list.is_empty() {
            let entries: Vec<String> = list.iter().map(|e| NAMES[e.index()].to_string()).collect();
            println!("  {name}: s_list = [{}]", entries.join(", "));
        }
    }
    let reach: Vec<String> = bench
        .scheme
        .push_set(&bench.world.tree)
        .iter()
        .map(|e| NAMES[e.index()].to_string())
        .collect();
    println!(
        "  push fan-out from N1 reaches: [{}]   (control hops so far: {})\n",
        reach.join(", "),
        bench.control_hops()
    );
    audit_quiescent(&bench.scheme, &bench.world.tree).expect("DUP invariants hold");
}

fn main() {
    // The paper's Figure 1 search tree: N1 is the authority;
    // N1–N2–N3–{N4, N5}; N5–N6–{N7, N8}. A capture probe records every
    // protocol event the bench emits.
    let capture = CaptureProbe::new();
    let mut bench = TestBench::with_probe(
        paper_example_tree(),
        DupScheme::new(),
        2,
        ProbeSink::attach(capture.clone()),
    );
    let mut cursor = 0usize;
    let (n1, n3, n4, n6) = (NodeId(0), NodeId(2), NodeId(3), NodeId(5));

    println!("Figure 2 of the paper, replayed on the DUP implementation.\n");

    // (a) N6 becomes interested: its subscription travels the search path
    // N6→N5→N3→N2→N1, leaving a virtual path; only N1 and N6 are in the
    // DUP tree, so a push is ONE direct hop.
    bench.make_interested(n6);
    bench.drain();
    show(&bench, "(a) N6 subscribes");
    show_trace(&capture, &mut cursor);
    let before = bench.push_hops();
    bench.refresh();
    show_trace(&capture, &mut cursor);
    println!(
        "  refresh pushed the new version in {} hop(s) — PCX would spend 8 hops\n",
        bench.push_hops() - before
    );

    // (b) N4 becomes interested: N3 catches the converging subscriptions,
    // joins the DUP tree, and substitutes itself for N6 upstream.
    bench.make_interested(n4);
    bench.drain();
    show(&bench, "(b) N4 subscribes; N3 becomes the fan-out point");
    show_trace(&capture, &mut cursor);
    let before = bench.push_hops();
    bench.refresh();
    show_trace(&capture, &mut cursor);
    println!(
        "  refresh pushed N1→N3→{{N4,N6}} in {} hops — CUP would spend 5\n",
        bench.push_hops() - before
    );

    // (c) N6 loses interest: its virtual path clears and the DUP tree
    // collapses back to a single direct edge N1→N4.
    bench.drop_interest(n6);
    bench.drain();
    show(&bench, "(c) N6 unsubscribes; tree collapses to N1→N4");
    show_trace(&capture, &mut cursor);

    assert_eq!(bench.scheme.s_list(n1), &[n4]);
    assert_eq!(bench.scheme.s_list(n3), &[n4]);
    assert_eq!(capture.len() as u64, bench.world.probe.emitted());
    println!(
        "Every intermediate state matched §III of the paper \
         ({} probe events captured).",
        capture.len()
    );
}
