//! A churn-heavy swarm: §III-C in action.
//!
//! ```text
//! cargo run --release --example churny_swarm
//! ```
//!
//! Real P2P populations turn over constantly. This example sweeps the
//! topology-change rate from none to one event per simulated second
//! (joins, edge-splitting joins, graceful leaves, and silent failures in
//! equal measure) and shows that DUP keeps its latency/cost advantage while
//! its repair traffic stays a small fraction of total cost — the paper
//! describes these repair mechanisms but never measures them.

use dup_p2p::prelude::*;

fn main() {
    println!("churny swarm: 1024 nodes, λ=2 q/s, balanced churn mix\n");
    println!(
        "{:>10}  {:>9} {:>9}  {:>9} {:>9}  {:>10} {:>11}",
        "churn (/s)", "PCX lat", "DUP lat", "PCX cost", "DUP cost", "DUP ctrl", "final nodes"
    );
    for rate in [0.0, 0.02, 0.1, 0.5, 1.0] {
        let cfg = RunConfig::builder(0xC0_FFEE)
            .nodes(1024)
            .lambda(2.0)
            .warmup_secs(7_200.0)
            .duration_secs(30_000.0)
            .churn((rate > 0.0).then(|| ChurnConfig::balanced(rate)))
            .build();
        let t = dup_p2p::compare_schemes(&cfg);
        println!(
            "{:>10}  {:>9.4} {:>9.4}  {:>9.4} {:>9.4}  {:>10} {:>11}",
            rate,
            t.pcx.latency_hops.mean,
            t.dup.latency_hops.mean,
            t.pcx.avg_query_cost,
            t.dup.avg_query_cost,
            t.dup.control_hops,
            t.dup.final_live_nodes,
        );
    }
    println!(
        "\nEven at one topology change per second the DUP tree self-repairs:\n\
         failed fan-out nodes are detected by their subscribers, which\n\
         re-subscribe through their new search paths (paper §III-C cases 1–5)."
    );
}
