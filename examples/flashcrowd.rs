//! Flash crowd on a hot index: the scenario the paper's introduction
//! motivates (Gnutella-style query hot spots with heavy-tailed arrivals).
//!
//! ```text
//! cargo run --release --example flashcrowd
//! ```
//!
//! A small set of nodes generates almost all queries for one index
//! (Zipf θ = 2.5) and arrivals are bursty (Pareto α = 1.05, the value
//! measured in real Gnutella traces). This is DUP's best case: the DUP tree
//! covers the few hot nodes with almost no relay overhead, while CUP pays
//! full search-tree paths for every push and PCX re-fetches after every TTL
//! expiry.

use dup_p2p::prelude::*;

fn run_at(lambda: f64) -> dup_p2p::Triple {
    let cfg = RunConfig::builder(0xF1A5)
        .nodes(2048)
        .zipf_theta(2.5) // strong hot spot
        .arrivals(ArrivalKind::Pareto { alpha: 1.05 }) // bursty, trace-like
        .lambda(lambda)
        .warmup_secs(7_200.0)
        .duration_secs(40_000.0)
        .build();
    dup_p2p::compare_schemes(&cfg)
}

fn main() {
    println!("flash crowd: 2048 nodes, Zipf θ=2.5, Pareto(α=1.05) arrivals\n");
    println!(
        "{:>8}  {:>10} {:>10} {:>10}   {:>8} {:>8}   {:>10}",
        "λ (q/s)", "PCX lat", "CUP lat", "DUP lat", "CUP/PCX", "DUP/PCX", "interested"
    );
    for lambda in [0.5, 2.0, 8.0] {
        let t = run_at(lambda);
        println!(
            "{:>8}  {:>10.4} {:>10.4} {:>10.4}   {:>8.3} {:>8.3}   {:>10}",
            lambda,
            t.pcx.latency_hops.mean,
            t.cup.latency_hops.mean,
            t.dup.latency_hops.mean,
            t.rel_cup(),
            t.rel_dup(),
            t.dup.final_interested_nodes,
        );
    }
    println!(
        "\nWith a concentrated crowd, DUP pushes reach the hot nodes directly;\n\
         the burstier the arrivals, the more queries land on a freshly pushed copy."
    );
}
