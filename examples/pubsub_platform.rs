//! The §VI future-work extension in action: DUP as a general data
//! dissemination platform, compared against SCRIBE-style forwarding.
//!
//! ```text
//! cargo run --release --example pubsub_platform
//! ```
//!
//! Builds one 512-node Chord ring hosting four topics with different
//! subscriber densities, publishes a batch of events to each, and compares
//! the two dissemination designs on delivery hops, relay copies (payload
//! deliveries to nodes that never asked for them), and per-node state.

use dup_dissem::{BayeuxScheme, CupScheme, DisseminationPlatform, DisseminationScheme, DupScheme};
use dup_overlay::NodeId;
use dup_p2p::prelude::{CaptureProbe, ProbeSink};

const TOPICS: [(u64, usize); 4] = [
    (0xA11CE, 3),  // niche topic: 3 subscribers
    (0xB0B, 16),   // small community
    (0xCA21, 64),  // popular topic
    (0xD00D, 256), // half the network
];

fn run<S: DisseminationScheme>(seed: u64) {
    let keys: Vec<u64> = TOPICS.iter().map(|&(k, _)| k).collect();
    let mut platform: DisseminationPlatform<S> = DisseminationPlatform::new(512, &keys, seed);
    // Observe the busiest topic through the probe layer: every message
    // delivery inside 0xD00D's tree lands in this capture.
    let capture = CaptureProbe::new();
    platform.attach_probe(0xD00D, ProbeSink::attach(capture.clone()));
    let nodes: Vec<NodeId> = platform.nodes().collect();
    for &(key, count) in &TOPICS {
        for i in 0..count {
            // Deterministic spread of subscribers over the ring.
            platform.subscribe(nodes[(i * 509 + key as usize) % nodes.len()], key);
        }
    }
    println!("{} dissemination:", S::label());
    println!(
        "  {:>10} {:>12} {:>14} {:>13} {:>16}",
        "topic", "subscribers", "delivery hops", "relay copies", "mean delay (s)"
    );
    for &(key, _) in &TOPICS {
        let mut hops = 0u64;
        let mut relays = 0usize;
        let mut delay_sum = 0.0;
        let mut delay_count = 0usize;
        let mut subscribers = 0;
        for round in 0..5u64 {
            let publisher = nodes[((round * 97 + key) % nodes.len() as u64) as usize];
            let report = platform.publish(publisher, key);
            hops += report.delivery_hops;
            relays += report.relay_copies;
            subscribers = report.subscribers;
            for &(_, d) in &report.delivered {
                delay_sum += d.as_secs_f64();
                delay_count += 1;
            }
        }
        println!(
            "  {:>#10x} {:>12} {:>14} {:>13} {:>16.3}",
            key,
            subscribers,
            hops,
            relays,
            delay_sum / delay_count.max(1) as f64,
        );
    }
    let stats = platform.state_stats();
    println!(
        "  per-node state: max {} entries/topic, {} entries total, {:.2} mean (non-empty)",
        stats.max_entries_per_topic, stats.total_entries, stats.mean_nonempty
    );
    assert_eq!(capture.len() as u64, platform.probe_events(0xD00D));
    println!(
        "  probe on topic 0xd00d captured {} delivery events\n",
        capture.len()
    );
}

fn main() {
    println!("512-node Chord ring, 4 topics, 5 events each\n");
    run::<DupScheme>(2025);
    run::<CupScheme>(2025);
    run::<BayeuxScheme>(2025);
    println!(
        "DUP delivers with direct tree edges (few relay copies, degree-bounded\n\
         state); SCRIBE-style forwarding pays every search-tree hop and copies\n\
         the payload into every relay; Bayeux reaches the same members but its\n\
         per-node state explodes — the rendezvous node stores every subscriber\n\
         (compare the max-entries column), which is the paper's §V scalability\n\
         argument for DUP."
    );
}
